#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "filestore/filestore.h"
#include "io/durable_cursor.h"
#include "ship/log_shipper.h"
#include "ship/standby_applier.h"
#include "tests/test_util.h"
#include "torture/torture_util.h"

namespace llb {
namespace {

DbOptions SmallOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 32;
  options.cache_pages = 16;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  return options;
}

/// Primary + standby twins over one fault-injectable env, wired through a
/// FileShipChannel spool — the unit-test sibling of the kLogShipping
/// torture scenario.
struct ShipRig {
  TortureEngine engine{SmallOptions()};
  std::unique_ptr<FileShipChannel> channel;
  std::unique_ptr<LogShipper> shipper;
  std::unique_ptr<StandbyApplier> applier;

  Status Open(const ShipperOptions& ship_options = {}) {
    LLB_RETURN_IF_ERROR(engine.Open());
    LLB_RETURN_IF_ERROR(engine.OpenStandby());
    channel = std::make_unique<FileShipChannel>(&engine.env, "ship");
    shipper = std::make_unique<LogShipper>(
        &engine.env, engine.name, engine.db->log(), channel.get(),
        ship_options);
    LLB_RETURN_IF_ERROR(shipper->Attach());
    applier =
        std::make_unique<StandbyApplier>(engine.standby.get(), channel.get());
    return applier->CatchUpFromLocalLog();
  }

  Status Update(uint32_t rounds, int64_t salt) {
    FileStore files(engine.db.get(), /*partition=*/0, /*base_page=*/0,
                    /*pages_per_file=*/1, /*num_files=*/24);
    for (uint32_t i = 0; i < rounds; ++i) {
      uint32_t f = (i * 7 + static_cast<uint32_t>(salt)) % 24;
      LLB_RETURN_IF_ERROR(
          files.WriteValues(f, {salt + i, static_cast<int64_t>(f)}));
    }
    LLB_RETURN_IF_ERROR(engine.db->FlushAll());
    return engine.db->ForceLog();
  }

  Status Replicate() {
    LLB_RETURN_IF_ERROR(shipper->Pump());
    return applier->Drain();
  }

  Lsn primary_tail() { return engine.db->log()->durable_lsn(); }
  Lsn standby_tail() { return engine.standby->log()->durable_lsn(); }
};

/// Encodes all durable records in [first, last] into one frame, the way
/// the shipper would — for tests that need hand-delivered frames.
Result<ShipFrame> BuildFrame(LogManager* log, uint64_t seq, Lsn first,
                             Lsn last) {
  ShipFrame frame;
  frame.seq = seq;
  frame.first_lsn = first;
  frame.last_lsn = last;
  LLB_RETURN_IF_ERROR(log->Scan(first, [&](const LogRecord& rec) {
    if (rec.lsn <= last) rec.EncodeTo(&frame.bytes);
    return Status::OK();
  }));
  return frame;
}

// ---------- frame wire format ----------

TEST(ShipFrameTest, EncodeDecodeRoundTrip) {
  ShipFrame frame;
  frame.seq = 42;
  frame.first_lsn = 100;
  frame.last_lsn = 117;
  frame.bytes = "framed records go here";
  std::string wire;
  frame.EncodeTo(&wire);

  ShipFrame decoded;
  ASSERT_OK(ShipFrame::DecodeFrom(Slice(wire), &decoded));
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.first_lsn, 100u);
  EXPECT_EQ(decoded.last_lsn, 117u);
  EXPECT_EQ(decoded.bytes, frame.bytes);
}

TEST(ShipFrameTest, DetectsCorruptionAndTruncation) {
  ShipFrame frame;
  frame.seq = 1;
  frame.first_lsn = 1;
  frame.last_lsn = 2;
  frame.bytes = "payload";
  std::string wire;
  frame.EncodeTo(&wire);

  ShipFrame out;
  for (size_t i = 0; i < wire.size(); i += 5) {
    std::string rotten = wire;
    rotten[i] ^= 0x01;
    EXPECT_TRUE(ShipFrame::DecodeFrom(Slice(rotten), &out).IsCorruption())
        << "flip at byte " << i;
  }
  std::string torn = wire.substr(0, wire.size() - 3);
  EXPECT_TRUE(ShipFrame::DecodeFrom(Slice(torn), &out).IsCorruption());
  std::string padded = wire + "x";
  EXPECT_TRUE(ShipFrame::DecodeFrom(Slice(padded), &out).IsCorruption());
}

// ---------- channels ----------

TEST(ShipChannelTest, FileChannelSendPollTrim) {
  MemEnv env;
  FileShipChannel channel(&env, "spool");
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ShipFrame frame;
    frame.seq = seq;
    frame.first_lsn = seq * 10;
    frame.last_lsn = seq * 10 + 5;
    frame.bytes = "seg" + std::to_string(seq);
    ASSERT_OK(channel.Send(frame));
  }
  std::vector<ShipFrame> polled;
  ASSERT_OK(channel.Poll(1, &polled));
  EXPECT_EQ(polled.size(), 3u);
  polled.clear();
  ASSERT_OK(channel.Poll(3, &polled));
  ASSERT_EQ(polled.size(), 1u);
  EXPECT_EQ(polled[0].seq, 3u);
  EXPECT_EQ(polled[0].bytes, "seg3");

  ASSERT_OK(channel.Trim(2));
  polled.clear();
  ASSERT_OK(channel.Poll(1, &polled));
  ASSERT_EQ(polled.size(), 1u);
  EXPECT_EQ(polled[0].seq, 3u);
  // Trimming already-trimmed ground is a no-op, not an error.
  ASSERT_OK(channel.Trim(2));
}

TEST(ShipChannelTest, FileChannelResendOverwrites) {
  MemEnv env;
  FileShipChannel channel(&env, "spool");
  ShipFrame frame;
  frame.seq = 1;
  frame.first_lsn = 1;
  frame.last_lsn = 1;
  frame.bytes = "v1";
  ASSERT_OK(channel.Send(frame));
  frame.last_lsn = 9;
  frame.bytes = "v2-longer";
  ASSERT_OK(channel.Send(frame));
  std::vector<ShipFrame> polled;
  ASSERT_OK(channel.Poll(1, &polled));
  ASSERT_EQ(polled.size(), 1u);
  EXPECT_EQ(polled[0].bytes, "v2-longer");
  EXPECT_EQ(polled[0].last_lsn, 9u);
}

TEST(ShipChannelTest, FileChannelHidesTornFrameUntilResend) {
  MemEnv base;
  FaultyEnv env(&base);
  FileShipChannel channel(&env, "spool");
  ShipFrame frame;
  frame.seq = 1;
  frame.first_lsn = 1;
  frame.last_lsn = 4;
  frame.bytes = "records";

  ScriptedFaultPolicy rot(
      {{FaultOp::kWriteAt, "spool.f", 1, FaultAction::kCorrupt}});
  env.SetPolicy(&rot);
  ASSERT_OK(channel.Send(frame));  // silently rotten on the way down
  env.SetPolicy(nullptr);
  EXPECT_EQ(rot.fired(), 1u);

  // The envelope crc rejects the frame at Poll: transient absence.
  std::vector<ShipFrame> polled;
  ASSERT_OK(channel.Poll(1, &polled));
  EXPECT_TRUE(polled.empty());

  // A clean re-send of the same seq heals the spool.
  ASSERT_OK(channel.Send(frame));
  ASSERT_OK(channel.Poll(1, &polled));
  ASSERT_EQ(polled.size(), 1u);
  EXPECT_EQ(polled[0].bytes, "records");
}

TEST(ShipChannelTest, InProcessChannelFailAndCorruptPolicies) {
  InProcessShipChannel channel;
  ShipFrame frame;
  frame.seq = 1;
  frame.first_lsn = 1;
  frame.last_lsn = 1;
  frame.bytes = "payload";

  ScriptedFaultPolicy fail(
      {{FaultOp::kWriteAt, "ship.chan", 1, FaultAction::kFail}});
  channel.SetPolicy(&fail);
  EXPECT_TRUE(channel.Send(frame).IsIoError());
  channel.SetPolicy(nullptr);
  EXPECT_EQ(channel.pending(), 0u);  // failed send stores nothing

  ASSERT_OK(channel.Send(frame));
  EXPECT_EQ(channel.pending(), 1u);
  std::vector<ShipFrame> polled;
  ASSERT_OK(channel.Poll(1, &polled));
  ASSERT_EQ(polled.size(), 1u);
  EXPECT_EQ(polled[0].bytes, "payload");
}

// ---------- shipper + applier end to end ----------

TEST(LogShippingTest, ReplicatesPrimaryToStandby) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(10, 1000));
  ASSERT_OK(rig.Replicate());

  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
  EXPECT_EQ(rig.standby_tail(), rig.primary_tail());
  ShipStats stats = rig.shipper->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.last_shipped_lsn, rig.primary_tail());
  EXPECT_GT(rig.applier->stats().records_applied, 0u);

  StandbyStatus status = rig.applier->GatherStatus(rig.primary_tail());
  EXPECT_EQ(status.lsns_behind, 0u);
  EXPECT_EQ(status.segments_behind, 0u);
  EXPECT_FALSE(status.promoted);

  // The standby's stable store equals the oracle of its own log.
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&rig.engine,
                                           rig.engine.standby.get()));
}

TEST(LogShippingTest, LagIsVisibleBeforeDrain) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(6, 2000));
  ASSERT_OK(rig.shipper->Pump());  // shipped but not yet applied

  StandbyStatus status = rig.applier->GatherStatus(rig.primary_tail());
  EXPECT_GT(status.lsns_behind, 0u);
  ASSERT_OK(rig.applier->Drain());
  status = rig.applier->GatherStatus(rig.primary_tail());
  EXPECT_EQ(status.lsns_behind, 0u);
}

TEST(LogShippingTest, CursorResumesAcrossShipperRestart) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(8, 3000));
  ASSERT_OK(rig.Replicate());
  Lsn shipped = rig.shipper->stats().last_shipped_lsn;
  rig.shipper.reset();

  // A new shipper resumes from the durable cursor: nothing durable past
  // it, so Attach builds no catch-up frame.
  rig.shipper = std::make_unique<LogShipper>(
      &rig.engine.env, rig.engine.name, rig.engine.db->log(),
      rig.channel.get());
  ASSERT_OK(rig.shipper->Attach());
  EXPECT_EQ(rig.shipper->stats().resyncs, 0u);
  EXPECT_EQ(rig.shipper->stats().last_shipped_lsn, shipped);

  ASSERT_OK(rig.Update(5, 4000));
  ASSERT_OK(rig.Replicate());
  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
}

TEST(LogShippingTest, AttachCatchesUpRecordsSealedWhileDetached) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(4, 5000));
  ASSERT_OK(rig.Replicate());
  rig.shipper.reset();  // detached: seals go unobserved

  ASSERT_OK(rig.Update(6, 6000));
  rig.shipper = std::make_unique<LogShipper>(
      &rig.engine.env, rig.engine.name, rig.engine.db->log(),
      rig.channel.get());
  ASSERT_OK(rig.shipper->Attach());
  // The gap between the cursor and the durable tail ships as one
  // catch-up frame.
  EXPECT_EQ(rig.shipper->stats().resyncs, 1u);
  ASSERT_OK(rig.Replicate());
  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&rig.engine,
                                           rig.engine.standby.get()));
}

TEST(LogShippingTest, ShipperSurvivesCorruptCursor) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(5, 7000));
  ASSERT_OK(rig.Replicate());
  rig.shipper.reset();

  // Rot the durable cursor. Attach must fall back to a from-scratch
  // re-ship; the applier dedups the overlap by LSN.
  {
    ASSERT_OK_AND_ASSIGN(
        std::shared_ptr<File> f,
        rig.engine.env.OpenFile(LogShipper::CursorName(rig.engine.name),
                                /*create=*/false));
    ASSERT_OK(f->WriteAt(0, Slice("garbage-cursor-bytes")));
    ASSERT_OK(f->Sync());
  }
  rig.shipper = std::make_unique<LogShipper>(
      &rig.engine.env, rig.engine.name, rig.engine.db->log(),
      rig.channel.get());
  ASSERT_OK(rig.shipper->Attach());
  EXPECT_EQ(rig.shipper->stats().resyncs, 1u);
  ASSERT_OK(rig.Replicate());
  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
  EXPECT_GT(rig.applier->stats().frames_duplicate +
                rig.applier->stats().frames_applied,
            0u);
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&rig.engine,
                                           rig.engine.standby.get()));
}

TEST(LogShippingTest, PumpRetriesTransientSendFault) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(4, 8000));

  ScriptedFaultPolicy drop(
      {{FaultOp::kWriteAt, "ship.f", 1, FaultAction::kFail}});
  rig.engine.env.SetPolicy(&drop);
  ASSERT_OK(rig.shipper->Pump());
  rig.engine.env.SetPolicy(nullptr);
  EXPECT_EQ(drop.fired(), 1u);
  EXPECT_GE(rig.shipper->stats().retries, 1u);
  EXPECT_EQ(rig.shipper->stats().send_failures, 0u);

  ASSERT_OK(rig.applier->Drain());
  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
}

TEST(LogShippingTest, PumpKeepsFrameQueuedAfterRetriesExhausted) {
  ShipperOptions ship_options;
  ship_options.max_retries = 1;  // two attempts per frame
  ShipRig rig;
  ASSERT_OK(rig.Open(ship_options));
  ASSERT_OK(rig.Update(4, 9000));

  ScriptedFaultPolicy wall({
      {FaultOp::kWriteAt, "ship.f", 1, FaultAction::kFail},
      {FaultOp::kWriteAt, "ship.f", 1, FaultAction::kFail},
  });
  rig.engine.env.SetPolicy(&wall);
  Status s = rig.shipper->Pump();
  rig.engine.env.SetPolicy(nullptr);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_EQ(rig.shipper->stats().send_failures, 1u);
  EXPECT_GT(rig.shipper->backlog(), 0u);
  EXPECT_EQ(rig.shipper->stats().last_shipped_lsn, 0u);  // cursor unmoved

  // The next Pump re-sends the queued frame; nothing was lost.
  ASSERT_OK(rig.Replicate());
  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
}

TEST(LogShippingTest, ResyncRepairsFrameRottenAfterCursorAdvanced) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(4, 10000));
  ASSERT_OK(rig.Replicate());
  Lsn before = rig.applier->applied_lsn();

  // The frame rots on the way into the spool but the send itself
  // succeeds, so the cursor advances past the range: only Resync (the
  // NAK path) can rebuild it.
  ASSERT_OK(rig.Update(4, 11000));
  ScriptedFaultPolicy rot(
      {{FaultOp::kWriteAt, "ship.f", 1, FaultAction::kCorrupt}});
  rig.engine.env.SetPolicy(&rot);
  ASSERT_OK(rig.shipper->Pump());
  rig.engine.env.SetPolicy(nullptr);
  EXPECT_EQ(rot.fired(), 1u);

  ASSERT_OK(rig.applier->Drain());
  EXPECT_EQ(rig.applier->applied_lsn(), before);  // gap: frame invisible
  EXPECT_LT(rig.applier->applied_lsn(), rig.primary_tail());

  ASSERT_OK(rig.shipper->Resync(rig.applier->applied_lsn() + 1));
  ASSERT_OK(rig.Replicate());
  EXPECT_EQ(rig.applier->applied_lsn(), rig.primary_tail());
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&rig.engine,
                                           rig.engine.standby.get()));
}

// ---------- applier ordering, dedup, overlap ----------

TEST(StandbyApplierTest, BuffersOutOfOrderFramesUntilGapFills) {
  TortureEngine engine(SmallOptions());
  ASSERT_OK(engine.Open());
  ASSERT_OK(engine.OpenStandby());
  FileStore files(engine.db.get(), 0, 0, 1, 24);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_OK(files.WriteValues(i % 24, {static_cast<int64_t>(i), 5}));
  }
  ASSERT_OK(engine.db->FlushAll());
  ASSERT_OK(engine.db->ForceLog());
  Lsn tail = engine.db->log()->durable_lsn();
  Lsn mid = tail / 2;
  ASSERT_GT(mid, 1u);

  InProcessShipChannel channel;
  StandbyApplier applier(engine.standby.get(), &channel);
  ASSERT_OK(applier.CatchUpFromLocalLog());

  // Deliver the second half first: it must buffer, not apply.
  ASSERT_OK_AND_ASSIGN(
      ShipFrame late, BuildFrame(engine.db->log(), 2, mid + 1, tail));
  ASSERT_OK(channel.Send(late));
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.applied_lsn(), 0u);
  StandbyStatus status = applier.GatherStatus();
  EXPECT_EQ(status.segments_behind, 1u);
  EXPECT_GT(status.lsns_behind, 0u);
  EXPECT_GT(status.bytes_behind, 0u);

  // The missing first half arrives; both frames apply in order.
  ASSERT_OK_AND_ASSIGN(ShipFrame early,
                       BuildFrame(engine.db->log(), 1, 1, mid));
  ASSERT_OK(channel.Send(early));
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.applied_lsn(), tail);
  EXPECT_EQ(applier.stats().frames_applied, 2u);
  EXPECT_EQ(channel.pending(), 0u);  // consumed frames trimmed
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&engine, engine.standby.get()));
}

TEST(StandbyApplierTest, DropsDuplicatesAndTrimsOverlap) {
  TortureEngine engine(SmallOptions());
  ASSERT_OK(engine.Open());
  ASSERT_OK(engine.OpenStandby());
  FileStore files(engine.db.get(), 0, 0, 1, 24);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_OK(files.WriteValues(i % 24, {static_cast<int64_t>(i), 6}));
  }
  ASSERT_OK(engine.db->FlushAll());
  ASSERT_OK(engine.db->ForceLog());
  Lsn tail = engine.db->log()->durable_lsn();
  Lsn mid = tail / 2;
  ASSERT_GT(mid, 2u);

  InProcessShipChannel channel;
  StandbyApplier applier(engine.standby.get(), &channel);
  ASSERT_OK(applier.CatchUpFromLocalLog());

  ASSERT_OK_AND_ASSIGN(ShipFrame first,
                       BuildFrame(engine.db->log(), 1, 1, mid));
  ASSERT_OK(channel.Send(first));
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.applied_lsn(), mid);

  // An exact duplicate under a fresh seq is recognized and dropped.
  ASSERT_OK_AND_ASSIGN(ShipFrame dup,
                       BuildFrame(engine.db->log(), 2, 1, mid));
  ASSERT_OK(channel.Send(dup));
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.applied_lsn(), mid);
  EXPECT_GE(applier.stats().frames_duplicate, 1u);

  // A frame overlapping the applied prefix (re-ship after a shipper
  // crash) applies only its unseen suffix.
  ASSERT_OK_AND_ASSIGN(
      ShipFrame overlap, BuildFrame(engine.db->log(), 3, mid - 1, tail));
  ASSERT_OK(channel.Send(overlap));
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.applied_lsn(), tail);
  EXPECT_EQ(engine.standby->log()->durable_lsn(), tail);
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&engine, engine.standby.get()));
}

TEST(StandbyApplierTest, CountsAndSkipsCorruptFrames) {
  TortureEngine engine(SmallOptions());
  ASSERT_OK(engine.Open());
  ASSERT_OK(engine.OpenStandby());
  FileStore files(engine.db.get(), 0, 0, 1, 24);
  ASSERT_OK(files.WriteValues(3, {31, 32}));
  ASSERT_OK(engine.db->FlushAll());
  ASSERT_OK(engine.db->ForceLog());
  Lsn tail = engine.db->log()->durable_lsn();

  InProcessShipChannel channel;
  StandbyApplier applier(engine.standby.get(), &channel);
  ASSERT_OK(applier.CatchUpFromLocalLog());

  // The in-process channel's corrupt policy rots the stored payload, so
  // the frame survives the envelope but fails record validation.
  ASSERT_OK_AND_ASSIGN(ShipFrame frame,
                       BuildFrame(engine.db->log(), 1, 1, tail));
  ScriptedFaultPolicy rot(
      {{FaultOp::kWriteAt, "ship.chan", 1, FaultAction::kCorrupt}});
  channel.SetPolicy(&rot);
  ASSERT_OK(channel.Send(frame));
  channel.SetPolicy(nullptr);
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.stats().frames_corrupt, 1u);
  EXPECT_EQ(applier.applied_lsn(), 0u);

  // The re-sent clean copy (higher seq, same range) closes the gap.
  frame.seq = 2;
  ASSERT_OK(channel.Send(frame));
  ASSERT_OK(applier.Drain());
  EXPECT_EQ(applier.applied_lsn(), tail);
}

// ---------- standby mode + promotion ----------

TEST(StandbyModeTest, RefusesMutationsUntilPromoted) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(4, 12000));
  ASSERT_OK(rig.Replicate());
  Database* standby = rig.engine.standby.get();

  EXPECT_TRUE(standby->Checkpoint().IsFailedPrecondition());
  EXPECT_TRUE(standby->FlushAll().IsFailedPrecondition());
  EXPECT_TRUE(standby->TruncateLog(1).IsFailedPrecondition());
  EXPECT_TRUE(
      standby->TakeBackup("sb_bk", 4).status().IsFailedPrecondition());
  Status s = standby->Checkpoint();
  EXPECT_NE(s.ToString().find("standby"), std::string::npos) << s.ToString();

  // Reads are allowed (that is what a warm standby is for).
  PageImage page;
  EXPECT_OK(standby->ReadPage(PageId{0, 0}, &page));
}

TEST(StandbyModeTest, PromoteEnablesWritesAndIsDurable) {
  ShipRig rig;
  ASSERT_OK(rig.Open());
  ASSERT_OK(rig.Update(6, 13000));
  ASSERT_OK(rig.Replicate());

  EXPECT_TRUE(rig.engine.db->Promote().IsFailedPrecondition());  // primary
  rig.shipper->Detach();
  ASSERT_OK(rig.engine.standby->Promote());
  EXPECT_FALSE(rig.engine.standby->standby());

  // The promoted twin takes writes of its own and stays self-consistent.
  FileStore standby_files(rig.engine.standby.get(), 0, 0, 1, 24);
  ASSERT_OK(standby_files.WriteValues(9, {901, 902}));
  ASSERT_OK(rig.engine.standby->FlushAll());
  ASSERT_OK(rig.engine.standby->ForceLog());
  ASSERT_OK(torture::VerifyDbAgainstOwnLog(&rig.engine,
                                           rig.engine.standby.get()));

  // Promotion is durable: reopening with the standby option still comes
  // up writable (the role file outranks the flag), and twice-promoting
  // is refused.
  EXPECT_TRUE(rig.engine.standby->Promote().IsFailedPrecondition());
  rig.applier.reset();
  rig.engine.standby.reset();
  ASSERT_OK(rig.engine.OpenStandby());
  EXPECT_FALSE(rig.engine.standby->standby());
  ASSERT_OK(rig.engine.standby->Checkpoint());
}

// ---------- durable cursor ----------

TEST(DurableCursorTest, SaveLoadOverwrite) {
  MemEnv env;
  EXPECT_TRUE(DurableCursor::Load(&env, "cur").status().IsNotFound());
  ASSERT_OK(DurableCursor::Save(&env, "cur", Slice("v1")));
  ASSERT_OK_AND_ASSIGN(std::string loaded, DurableCursor::Load(&env, "cur"));
  EXPECT_EQ(loaded, "v1");
  ASSERT_OK(DurableCursor::Save(&env, "cur", Slice("second-version")));
  ASSERT_OK_AND_ASSIGN(loaded, DurableCursor::Load(&env, "cur"));
  EXPECT_EQ(loaded, "second-version");
}

TEST(DurableCursorTest, TornTempFileDoesNotClobberPublishedValue) {
  MemEnv env;
  ASSERT_OK(DurableCursor::Save(&env, "cur", Slice("published")));
  // A crash mid-save leaves a torn temp file behind; the published copy
  // must win.
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f,
                         env.OpenFile("cur.tmp", /*create=*/true));
    ASSERT_OK(f->WriteAt(0, Slice("half-written gar")));
    ASSERT_OK(f->Sync());
  }
  ASSERT_OK_AND_ASSIGN(std::string loaded, DurableCursor::Load(&env, "cur"));
  EXPECT_EQ(loaded, "published");
}

TEST(DurableCursorTest, DetectsRot) {
  MemEnv env;
  ASSERT_OK(DurableCursor::Save(&env, "cur", Slice("payload")));
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f,
                         env.OpenFile("cur", /*create=*/false));
    ASSERT_OK(f->WriteAt(0, Slice("x")));
    ASSERT_OK(f->Sync());
  }
  EXPECT_TRUE(DurableCursor::Load(&env, "cur").status().IsCorruption());
}

}  // namespace
}  // namespace llb
