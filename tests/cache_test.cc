#include <gtest/gtest.h>

#include <memory>

#include "cache/cache_manager.h"
#include "filestore/file_ops.h"
#include "io/mem_env.h"
#include "ops/operation.h"
#include "recovery/general_write_graph.h"
#include "recovery/tree_write_graph.h"
#include "tests/test_util.h"

namespace llb {
namespace {

PageId P(uint32_t page) { return PageId{0, page}; }

PageImage ValuePage(const std::string& content) {
  PageImage page;
  page.SetPayload(Slice(content));
  page.set_type(PageType::kRaw);
  return page;
}

class CacheTest : public ::testing::Test {
 protected:
  void Init(BackupPolicy policy, bool tree_graph = false,
            size_t capacity = 64) {
    RegisterFileOps(&registry_);
    auto log = LogManager::Open(&env_, "log");
    ASSERT_TRUE(log.ok());
    log_ = std::move(log).value();
    auto store = PageStore::Open(&env_, "stable", 1);
    ASSERT_TRUE(store.ok());
    stable_ = std::move(store).value();
    coordinator_ = std::make_unique<BackupCoordinator>(1);
    CacheOptions options;
    options.capacity_pages = capacity;
    options.policy = policy;
    std::unique_ptr<WriteGraph> graph;
    if (tree_graph) {
      graph = std::make_unique<TreeWriteGraph>();
    } else {
      graph = std::make_unique<GeneralWriteGraph>();
    }
    cache_ = std::make_unique<CacheManager>(
        stable_.get(), log_.get(), &registry_, std::move(graph),
        coordinator_.get(), &tracker_, options);
  }

  void SetFences(BackupPos done, BackupPos pending) {
    BackupProgress* progress = coordinator_->Get(0);
    std::unique_lock<std::shared_mutex> latch(progress->latch());
    progress->SetPendingFence(pending);
    if (done != 0) {
      // Emulate a completed step: D advances to P then P moves on.
      BackupPos p = progress->pending_fence();
      progress->SetPendingFence(done);
      progress->SetDoneFence();
      progress->SetPendingFence(p);
    }
  }

  Status WritePageOp(uint32_t page, const std::string& content) {
    LogRecord rec = MakePhysicalWrite(P(page), ValuePage(content));
    return cache_->ExecuteOp(&rec);
  }

  Status CopyOp(uint32_t src, uint32_t dst) {
    LogRecord rec = MakeFileCopy({P(src)}, {P(dst)});
    return cache_->ExecuteOp(&rec);
  }

  MemEnv env_;
  OpRegistry registry_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<PageStore> stable_;
  std::unique_ptr<BackupCoordinator> coordinator_;
  IncrementalTracker tracker_;
  std::unique_ptr<CacheManager> cache_;
};

TEST_F(CacheTest, ExecuteAndReadBack) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "hello"));
  PageImage page;
  ASSERT_OK(cache_->ReadPage(P(1), &page));
  EXPECT_EQ(page.payload().ToString().substr(0, 5), "hello");
  EXPECT_TRUE(cache_->IsDirty(P(1)));
  EXPECT_EQ(page.lsn(), 1u);
}

TEST_F(CacheTest, OpsAssignMonotoneLsns) {
  Init(BackupPolicy::kGeneral);
  LogRecord a = MakePhysicalWrite(P(1), ValuePage("a"));
  LogRecord b = MakePhysicalWrite(P(2), ValuePage("b"));
  ASSERT_OK(cache_->ExecuteOp(&a));
  ASSERT_OK(cache_->ExecuteOp(&b));
  EXPECT_LT(a.lsn, b.lsn);
}

TEST_F(CacheTest, RejectsCrossPartitionOps) {
  Init(BackupPolicy::kGeneral);
  LogRecord rec = MakeFileCopy({PageId{0, 1}}, {PageId{1, 2}});
  EXPECT_FALSE(cache_->ExecuteOp(&rec).ok());
}

TEST_F(CacheTest, RejectsWriteFreeOps) {
  Init(BackupPolicy::kGeneral);
  LogRecord rec;
  rec.op_code = kOpFileCopy;
  rec.readset = {P(1)};
  EXPECT_FALSE(cache_->ExecuteOp(&rec).ok());
}

TEST_F(CacheTest, FlushMakesPageCleanAndStable) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "persist me"));
  ASSERT_OK(cache_->FlushPage(P(1)));
  EXPECT_FALSE(cache_->IsDirty(P(1)));
  PageImage page;
  ASSERT_OK(stable_->ReadPage(P(1), &page));
  EXPECT_EQ(page.payload().ToString().substr(0, 10), "persist me");
}

TEST_F(CacheTest, FlushForcesWalFirst) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "walled"));
  EXPECT_LT(log_->durable_lsn(), 1u);
  ASSERT_OK(cache_->FlushPage(P(1)));
  EXPECT_GE(log_->durable_lsn(), 1u);
}

TEST_F(CacheTest, FlushRespectsWriteGraphOrder) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "src"));
  ASSERT_OK(cache_->FlushPage(P(1)));
  ASSERT_OK(CopyOp(1, 2));       // reads 1 writes 2
  ASSERT_OK(WritePageOp(1, "overwrite"));  // writer of 1: reader -> writer
  // Flushing page 1 must install the copy's node (page 2) first.
  ASSERT_OK(cache_->FlushPage(P(1)));
  EXPECT_FALSE(cache_->IsDirty(P(2)));
  PageImage page;
  ASSERT_OK(stable_->ReadPage(P(2), &page));
  EXPECT_EQ(page.payload().ToString().substr(0, 3), "src");
}

TEST_F(CacheTest, FlushAllCleansEverything) {
  Init(BackupPolicy::kGeneral);
  for (uint32_t i = 1; i <= 10; ++i) {
    ASSERT_OK(WritePageOp(i, "x" + std::to_string(i)));
  }
  ASSERT_OK(cache_->FlushAll());
  for (uint32_t i = 1; i <= 10; ++i) EXPECT_FALSE(cache_->IsDirty(P(i)));
  EXPECT_EQ(cache_->RedoStartLsn(), log_->next_lsn());
}

TEST_F(CacheTest, EvictionFlushesDirtyVictims) {
  Init(BackupPolicy::kGeneral, /*tree_graph=*/false, /*capacity=*/8);
  for (uint32_t i = 1; i <= 32; ++i) {
    ASSERT_OK(WritePageOp(i, "v" + std::to_string(i)));
  }
  EXPECT_LE(cache_->CachedPageCount(), 8u);
  // Every page readable with its own value (read-through after evict).
  for (uint32_t i = 1; i <= 32; ++i) {
    PageImage page;
    ASSERT_OK(cache_->ReadPage(P(i), &page));
    EXPECT_EQ(page.payload().ToString().substr(0, 1 + (i >= 10 ? 2 : 1)),
              "v" + std::to_string(i));
  }
  EXPECT_GT(cache_->stats().evictions, 0u);
}

TEST_F(CacheTest, NoIdentityWritesWhenBackupInactive) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "quiet"));
  ASSERT_OK(cache_->FlushPage(P(1)));
  EXPECT_EQ(cache_->stats().identity_writes, 0u);
  EXPECT_EQ(cache_->stats().decisions, 0u);
}

TEST_F(CacheTest, GeneralPolicyLogsDoneAndDoubtRegions) {
  Init(BackupPolicy::kGeneral);
  // Fences: done < 10, doubt [10, 20), pend >= 20.
  SetFences(/*done=*/10, /*pending=*/20);
  ASSERT_OK(WritePageOp(5, "done-region"));
  ASSERT_OK(WritePageOp(15, "doubt-region"));
  ASSERT_OK(WritePageOp(25, "pend-region"));
  ASSERT_OK(cache_->FlushPage(P(5)));
  ASSERT_OK(cache_->FlushPage(P(15)));
  ASSERT_OK(cache_->FlushPage(P(25)));
  CacheStats stats = cache_->stats();
  EXPECT_EQ(stats.decisions, 3u);
  EXPECT_EQ(stats.decisions_logged, 2u);  // done + doubt
  EXPECT_EQ(stats.identity_writes, 2u);
  EXPECT_EQ(stats.region_done, 1u);
  EXPECT_EQ(stats.region_doubt, 1u);
  EXPECT_EQ(stats.region_pend, 1u);
  EXPECT_EQ(log_->stats().identity_records, 2u);
}

TEST_F(CacheTest, NaivePolicyNeverLogs) {
  Init(BackupPolicy::kNaive);
  SetFences(10, 20);
  ASSERT_OK(WritePageOp(5, "done-region"));
  ASSERT_OK(cache_->FlushPage(P(5)));
  EXPECT_EQ(cache_->stats().identity_writes, 0u);
}

TEST_F(CacheTest, IdentityWrittenPageIsStillFlushedAndClean) {
  Init(BackupPolicy::kGeneral);
  SetFences(10, 20);
  ASSERT_OK(WritePageOp(5, "logged+flushed"));
  ASSERT_OK(cache_->FlushPage(P(5)));
  EXPECT_FALSE(cache_->IsDirty(P(5)));
  PageImage page;
  ASSERT_OK(stable_->ReadPage(P(5), &page));
  EXPECT_EQ(page.payload().ToString().substr(0, 6), "logged");
  // The stable page carries the identity write's LSN.
  EXPECT_EQ(page.lsn(), log_->durable_lsn());
}

TEST_F(CacheTest, TreePolicyCaseAnalysis) {
  Init(BackupPolicy::kTree, /*tree_graph=*/true);
  SetFences(/*done=*/10, /*pending=*/20);

  // Case Pend(X): plain flush.
  ASSERT_OK(WritePageOp(25, "pend"));
  ASSERT_OK(cache_->FlushPage(P(25)));
  // Case no successors, Done(X): plain flush.
  ASSERT_OK(WritePageOp(5, "done-nosucc"));
  ASSERT_OK(cache_->FlushPage(P(5)));
  CacheStats stats = cache_->stats();
  EXPECT_EQ(stats.identity_writes, 0u);
  EXPECT_EQ(stats.tree_plain_pend_x, 1u);
  EXPECT_EQ(stats.tree_plain_done_succ, 1u);

  // Case Done(X) & !Done(S(X)): Iw/oF. Copy 25 -> 6 gives 6 the
  // successor 25 (pending); 6 is in Done.
  ASSERT_OK(CopyOp(25, 6));
  ASSERT_OK(cache_->FlushPage(P(6)));
  stats = cache_->stats();
  EXPECT_EQ(stats.tree_iwof_done_x, 1u);
  EXPECT_EQ(stats.identity_writes, 1u);

  // Case Doubt(X) & Pend(S(X)): Iw/oF.
  ASSERT_OK(CopyOp(25, 15));
  ASSERT_OK(cache_->FlushPage(P(15)));
  stats = cache_->stats();
  EXPECT_EQ(stats.tree_iwof_pend_succ, 1u);

  // Case Doubt & Doubt without violation (#succ < #X... dagger holds when
  // successor position is below X): copy 11 -> 16 (succ 11 in doubt,
  // X=16 in doubt, 16 > 11 so no violation): plain flush.
  ASSERT_OK(WritePageOp(11, "doubt-src"));
  ASSERT_OK(cache_->FlushPage(P(11)));
  ASSERT_OK(CopyOp(11, 16));
  ASSERT_OK(cache_->FlushPage(P(16)));
  stats = cache_->stats();
  EXPECT_EQ(stats.tree_plain_doubt_ok, 1u);

  // Case Doubt & Doubt with violation (X=12 below its successor 17):
  ASSERT_OK(WritePageOp(17, "doubt-src2"));
  ASSERT_OK(cache_->FlushPage(P(17)));
  ASSERT_OK(CopyOp(17, 12));
  ASSERT_OK(cache_->FlushPage(P(12)));
  stats = cache_->stats();
  EXPECT_EQ(stats.tree_iwof_doubt_viol, 1u);
}

TEST_F(CacheTest, CheckpointWritesRecord) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "x"));
  ASSERT_OK(cache_->Checkpoint());
  int checkpoints = 0;
  ASSERT_OK(log_->Scan(1, [&](const LogRecord& rec) {
    if (rec.IsCheckpoint()) ++checkpoints;
    return Status::OK();
  }));
  EXPECT_EQ(checkpoints, 1);
}

TEST_F(CacheTest, RedoStartReflectsOldestDirtyOp) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(1, "a"));  // lsn 1
  ASSERT_OK(WritePageOp(2, "b"));  // lsn 2
  EXPECT_EQ(cache_->RedoStartLsn(), 1u);
  ASSERT_OK(cache_->FlushPage(P(1)));
  EXPECT_EQ(cache_->RedoStartLsn(), 2u);
}

TEST_F(CacheTest, TrackerSeesFlushes) {
  Init(BackupPolicy::kGeneral);
  ASSERT_OK(WritePageOp(3, "tracked"));
  ASSERT_OK(cache_->FlushPage(P(3)));
  auto changed = tracker_.SnapshotAndClear();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], P(3));
}

TEST_F(CacheTest, MultiPageLogicalOpFlushesAtomicSet) {
  Init(BackupPolicy::kGeneral);
  // Transform writes pages 1..3 in one op: they form one node and must
  // flush together.
  ASSERT_OK(WritePageOp(1, "a"));
  ASSERT_OK(WritePageOp(2, "b"));
  ASSERT_OK(WritePageOp(3, "c"));
  ASSERT_OK(cache_->FlushAll());
  LogRecord rec = MakeFileTransform({P(1), P(2), P(3)}, 42);
  ASSERT_OK(cache_->ExecuteOp(&rec));
  ASSERT_OK(cache_->FlushPage(P(2)));
  EXPECT_FALSE(cache_->IsDirty(P(1)));
  EXPECT_FALSE(cache_->IsDirty(P(3)));
}

}  // namespace
}  // namespace llb
