#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "apprec/app_recovery.h"
#include "btree/btree.h"
#include "filestore/filestore.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "sim/workload.h"
#include "tests/test_util.h"

namespace llb {
namespace {

TEST(IntegrationTest, MultiplePartitionsHostDifferentDomains) {
  DbOptions options;
  options.partitions = 3;
  options.pages_per_partition = 1024;
  options.cache_pages = 128;
  options.graph = WriteGraphKind::kGeneral;  // covers all op classes
  options.backup_policy = BackupPolicy::kGeneral;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));

  BTree tree(engine->db(), /*partition=*/0, 0, SplitLogging::kLogical);
  FileStore files(engine->db(), /*partition=*/1, 0, 2, 16);
  AppRecovery apps(engine->db(), /*partition=*/2, 0, 64, 900, 4);

  ASSERT_OK(tree.Create());
  ASSERT_OK(apps.InitApp(0));
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(tree.Insert(i, "t" + std::to_string(i)));
    if (i % 10 == 0) {
      ASSERT_OK(files.WriteValues(i % 16, {i, i + 1, i + 2}));
    }
    if (i % 8 == 0) {
      ASSERT_OK(apps.WriteMessage(i % 64, i));
      ASSERT_OK(apps.Read(0, i % 64));
    }
  }
  ASSERT_OK(files.Copy(0, 10));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->CrashAndRecover());

  BTree tree2(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree2.CheckInvariants().status());
  FileStore files2(engine->db(), 1, 0, 2, 16);
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> copy, files2.ReadValues(10));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> orig, files2.ReadValues(0));
  EXPECT_EQ(copy, orig);
  AppRecovery apps2(engine->db(), 2, 0, 64, 900, 4);
  ASSERT_OK_AND_ASSIGN(uint64_t ops, apps2.AppOpCount(0));
  EXPECT_EQ(ops, 50u);
}

TEST(IntegrationTest, ParallelPartitionBackupWhileUpdating) {
  DbOptions options;
  options.partitions = 2;
  options.pages_per_partition = 512;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.parallel_backup = true;
  options.backup_steps = 8;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));

  BTree tree_a(engine->db(), 0, 0, SplitLogging::kLogical);
  BTree tree_b(engine->db(), 1, 0, SplitLogging::kLogical);
  ASSERT_OK(tree_a.Create());
  ASSERT_OK(tree_b.Create());
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(tree_a.Insert(i, Slice("a")));
    ASSERT_OK(tree_b.Insert(i, Slice("b")));
  }
  ASSERT_OK(engine->db()->FlushAll());

  // Updates race the backup from another thread.
  std::atomic<bool> stop{false};
  std::atomic<int> next{200};
  Status updater_status;
  std::thread updater([&]() {
    while (!stop.load()) {
      int k = next.fetch_add(1);
      if (k >= 2000) break;
      Status sa = tree_a.Insert(k, Slice("a2"));
      Status sb = tree_b.Insert(k, Slice("b2"));
      if (!sa.ok() || !sb.ok()) {
        updater_status = sa.ok() ? sb : sa;
        return;
      }
    }
  });
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine->db()->TakeBackup("par_bk"));
  stop.store(true);
  updater.join();
  ASSERT_OK(updater_status);
  EXPECT_TRUE(manifest.complete);
  ASSERT_OK(engine->db()->ForceLog());

  // Media-recover from the backup taken under concurrency.
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 2));
    ASSERT_OK(stable->WipePartition(0));
    ASSERT_OK(stable->WipePartition(1));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "par_bk", registry)
                .status());
  ASSERT_OK(engine->Reopen());
  BTree check_a(engine->db(), 0, 0, SplitLogging::kLogical);
  BTree check_b(engine->db(), 1, 0, SplitLogging::kLogical);
  ASSERT_OK(check_a.CheckInvariants().status());
  ASSERT_OK(check_b.CheckInvariants().status());
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(check_a.Get(i).status());
    ASSERT_OK(check_b.Get(i).status());
  }
}

TEST(IntegrationTest, CachePressureDuringBackup) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 600;
  options.cache_pages = 16;  // heavy eviction pressure
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());

  int64_t key = 0;
  BackupJobOptions job;
  job.steps = 6;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 150; ++i, ++key) {
      LLB_RETURN_IF_ERROR(tree.Insert((key * 17) % 4001, Slice("v")));
    }
    return Status::OK();  // evictions flush under the hood
  };
  ASSERT_OK(engine->db()->TakeBackupWithOptions("bk", job).status());
  EXPECT_GT(engine->db()->GatherStats().cache.evictions, 0u);
  ASSERT_OK(engine->db()->ForceLog());

  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "bk", registry)
                .status());
  ASSERT_OK(engine->Reopen());
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(recovered.CheckInvariants().status());
}

TEST(IntegrationTest, TreeDriverRunsUnderTreePolicy) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 256;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  TreeUniformDriver driver(engine->db(), 0, 256, /*seed=*/42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(driver.Step());
  }
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->CrashAndRecover());
}

TEST(IntegrationTest, GeneralDriverRunsUnderGeneralPolicy) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 128;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  GeneralUniformDriver driver(engine->db(), 0, 128, /*seed=*/42);
  // Seed one file so copies have content.
  FileStore files(engine->db(), 0, 0, 1, 128);
  ASSERT_OK(files.WriteValues(0, {1, 2, 3}));
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(driver.Step());
  }
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->CrashAndRecover());
}

TEST(IntegrationTest, StatsAreCoherent) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 256;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int i = 0; i < 500; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("bk").status());

  DbStats stats = engine->db()->GatherStats();
  EXPECT_GT(stats.cache.ops_applied, 500u);
  EXPECT_GT(stats.cache.pages_flushed, 0u);
  EXPECT_GT(stats.log.records, stats.cache.ops_applied - 1);
  EXPECT_EQ(stats.backups_taken, 1u);
  EXPECT_EQ(stats.backup_pages_copied, 256u);
  EXPECT_GE(stats.cache.decisions_logged, stats.cache.identity_writes == 0
                                              ? 0u
                                              : stats.cache.identity_writes);
  EXPECT_LE(stats.ExtraLoggingProbability(), 1.0);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace llb
