#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "filestore/filestore.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions GeneralDbOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 1024;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  return options;
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = TestEngine::Create(GeneralDbOptions());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    files_ = std::make_unique<FileStore>(engine_->db(), 0, /*base_page=*/0,
                                         /*pages_per_file=*/3,
                                         /*num_files=*/16);
  }

  std::vector<int64_t> Sequence(int64_t start, size_t n) {
    std::vector<int64_t> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = start + static_cast<int64_t>(i);
    return v;
  }

  std::unique_ptr<TestEngine> engine_;
  std::unique_ptr<FileStore> files_;
};

TEST_F(FileStoreTest, WriteReadRoundTrip) {
  std::vector<int64_t> values = Sequence(100, 1200);  // spans 3 pages
  ASSERT_OK(files_->WriteValues(0, values));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> got, files_->ReadValues(0));
  EXPECT_EQ(got, values);
}

TEST_F(FileStoreTest, EmptyFileReadsEmpty) {
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> got, files_->ReadValues(5));
  EXPECT_TRUE(got.empty());
}

TEST_F(FileStoreTest, OversizeWriteRejected) {
  std::vector<int64_t> too_big(files_->capacity_per_file() + 1, 1);
  EXPECT_FALSE(files_->WriteValues(0, too_big).ok());
}

TEST_F(FileStoreTest, CopyDuplicatesContents) {
  std::vector<int64_t> values = Sequence(7, 900);
  ASSERT_OK(files_->WriteValues(1, values));
  ASSERT_OK(files_->Copy(1, 2));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> got, files_->ReadValues(2));
  EXPECT_EQ(got, values);
}

TEST_F(FileStoreTest, CopyToSelfRejected) {
  EXPECT_FALSE(files_->Copy(3, 3).ok());
}

TEST_F(FileStoreTest, SortProducesSortedOutput) {
  std::vector<int64_t> values{9, -3, 42, 0, 42, 7, -100};
  ASSERT_OK(files_->WriteValues(0, values));
  ASSERT_OK(files_->SortInto(0, 1));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> got, files_->ReadValues(1));
  std::vector<int64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  // Source unchanged.
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> src, files_->ReadValues(0));
  EXPECT_EQ(src, values);
}

TEST_F(FileStoreTest, TransformIsDeterministic) {
  ASSERT_OK(files_->WriteValues(0, Sequence(1, 10)));
  ASSERT_OK(files_->WriteValues(1, Sequence(1, 10)));
  ASSERT_OK(files_->Transform(0, 99));
  ASSERT_OK(files_->Transform(1, 99));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> a, files_->ReadValues(0));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> b, files_->ReadValues(1));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Sequence(1, 10));
}

TEST_F(FileStoreTest, CopyChainSurvivesCrash) {
  ASSERT_OK(files_->WriteValues(0, Sequence(500, 1000)));
  ASSERT_OK(files_->Copy(0, 1));
  ASSERT_OK(files_->Copy(1, 2));
  ASSERT_OK(files_->WriteValues(0, Sequence(0, 10)));  // overwrite source
  ASSERT_OK(engine_->db()->FlushAll());
  ASSERT_OK(engine_->CrashAndRecover());

  FileStore reopened(engine_->db(), 0, 0, 3, 16);
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> f2, reopened.ReadValues(2));
  EXPECT_EQ(f2, Sequence(500, 1000));
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> f0, reopened.ReadValues(0));
  EXPECT_EQ(f0, Sequence(0, 10));
}

TEST_F(FileStoreTest, UnflushedOpsRecoverFromLogAfterCrash) {
  ASSERT_OK(files_->WriteValues(0, Sequence(1, 100)));
  ASSERT_OK(files_->Copy(0, 1));
  // Force the log but flush nothing: after the crash, redo must rebuild
  // both files from the log alone.
  ASSERT_OK(engine_->db()->ForceLog());
  ASSERT_OK(engine_->CrashAndRecover());
  FileStore reopened(engine_->db(), 0, 0, 3, 16);
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> f1, reopened.ReadValues(1));
  EXPECT_EQ(f1, Sequence(1, 100));
}

TEST_F(FileStoreTest, BadFileIdsRejected) {
  EXPECT_FALSE(files_->WriteValues(99, {1}).ok());
  EXPECT_FALSE(files_->ReadValues(99).ok());
  EXPECT_FALSE(files_->Copy(0, 99).ok());
  EXPECT_FALSE(files_->Transform(99, 1).ok());
}

}  // namespace
}  // namespace llb
