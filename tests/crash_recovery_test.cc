#include <gtest/gtest.h>

#include <memory>

#include "apprec/app_recovery.h"
#include "btree/btree.h"
#include "filestore/filestore.h"
#include "io/fault_env.h"
#include "sim/harness.h"
#include "sim/workload.h"
#include "tests/test_util.h"

namespace llb {
namespace {

/// After any crash + recovery, the stable database must equal the state
/// obtained by replaying the entire durable log from scratch (the
/// recovery oracle). These tests sweep crash points across workloads.

DbOptions SmallDb(WriteGraphKind graph, BackupPolicy policy) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 512;
  options.cache_pages = 32;
  options.graph = graph;
  options.backup_policy = policy;
  return options;
}

Status VerifyAgainstOracle(TestEngine* engine, const std::string& tag) {
  std::unique_ptr<PageStore> oracle;
  LLB_RETURN_IF_ERROR(testutil::BuildOracle(
      engine->env(), *engine->db()->log(), *engine->db()->registry(),
      "oracle_" + tag, engine->db()->options().partitions, &oracle));
  std::string diff = testutil::DiffStores(
      *engine->db()->stable(), *oracle,
      engine->db()->options().partitions,
      engine->db()->options().pages_per_partition);
  if (!diff.empty()) {
    return Status::Internal("recovered state differs from oracle at page " +
                            diff);
  }
  return Status::OK();
}

/// Runs `workload` against a fresh engine with a crash scheduled at
/// durable event k, recovers, and oracle-verifies. Returns the total
/// durable events of a full (uncrashed) run when k == 0.
template <typename WorkloadFn>
uint64_t RunWithCrashAt(WorkloadFn workload, const DbOptions& options,
                        uint64_t k, const std::string& tag) {
  auto engine_or = TestEngine::Create(options);
  EXPECT_TRUE(engine_or.ok());
  std::unique_ptr<TestEngine> engine = std::move(engine_or).value();

  std::unique_ptr<FaultInjector> injector;
  if (k == 0) {
    injector = std::make_unique<RecordingInjector>();
  } else {
    injector = std::make_unique<CrashAtEventInjector>(k);
  }
  engine->env()->SetFaultInjector(injector.get());

  // Run the workload; IO errors are the scheduled crash firing.
  Status s = workload(engine.get());
  if (k == 0) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    uint64_t total = static_cast<RecordingInjector*>(injector.get())->count();
    engine->env()->SetFaultInjector(nullptr);
    return total;
  }
  // Crash, recover, verify.
  Status rs = engine->CrashAndRecover();
  EXPECT_TRUE(rs.ok()) << "crash point " << k << ": " << rs.ToString();
  Status vs = VerifyAgainstOracle(engine.get(),
                                  tag + "_k" + std::to_string(k));
  EXPECT_TRUE(vs.ok()) << "crash point " << k << ": " << vs.ToString();
  return 0;
}

template <typename WorkloadFn>
void SweepCrashPoints(WorkloadFn workload, const DbOptions& options,
                      const std::string& tag, uint64_t max_points = 48) {
  uint64_t total = RunWithCrashAt(workload, options, 0, tag);
  ASSERT_GT(total, 0u);
  uint64_t step = total / max_points + 1;
  for (uint64_t k = 1; k <= total; k += step) {
    RunWithCrashAt(workload, options, k, tag);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecoveryTest, BtreeWorkloadSweep) {
  auto workload = [](TestEngine* engine) -> Status {
    BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
    LLB_RETURN_IF_ERROR(tree.Create());
    for (int64_t k = 0; k < 220; ++k) {
      LLB_RETURN_IF_ERROR(tree.Insert((k * 37) % 1009, "v" + std::to_string(k)));
      if (k % 40 == 13) LLB_RETURN_IF_ERROR(engine->db()->FlushAll());
      if (k % 50 == 27) LLB_RETURN_IF_ERROR(engine->db()->Checkpoint());
    }
    return engine->db()->FlushAll();
  };
  SweepCrashPoints(workload, SmallDb(WriteGraphKind::kTree,
                                     BackupPolicy::kTree),
                   "btree");
}

TEST(CrashRecoveryTest, FileStoreGeneralOpsSweep) {
  auto workload = [](TestEngine* engine) -> Status {
    FileStore files(engine->db(), 0, 0, /*pages_per_file=*/2,
                    /*num_files=*/12);
    std::vector<int64_t> base{5, 3, 8, 1, 9, 2};
    LLB_RETURN_IF_ERROR(files.WriteValues(0, base));
    for (int i = 0; i < 30; ++i) {
      LLB_RETURN_IF_ERROR(files.Copy(i % 4, 4 + (i % 5)));
      LLB_RETURN_IF_ERROR(files.Transform(i % 4, i));
      if (i % 5 == 2) {
        LLB_RETURN_IF_ERROR(files.SortInto(4 + (i % 5), 10));
      }
      if (i % 7 == 3) LLB_RETURN_IF_ERROR(engine->db()->FlushAll());
    }
    return engine->db()->FlushAll();
  };
  SweepCrashPoints(workload, SmallDb(WriteGraphKind::kGeneral,
                                     BackupPolicy::kGeneral),
                   "filestore");
}

TEST(CrashRecoveryTest, AppRecoveryWorkloadSweep) {
  auto workload = [](TestEngine* engine) -> Status {
    AppRecovery apps(engine->db(), 0, /*msg_base=*/0, /*num_msgs=*/32,
                     /*app_base=*/400, /*num_apps=*/4);
    for (uint32_t a = 0; a < 4; ++a) LLB_RETURN_IF_ERROR(apps.InitApp(a));
    for (int i = 0; i < 60; ++i) {
      uint32_t app = i % 4;
      LLB_RETURN_IF_ERROR(apps.WriteMessage(i % 32, i * 31));
      LLB_RETURN_IF_ERROR(apps.Read(app, i % 32));
      LLB_RETURN_IF_ERROR(apps.Exec(app, i));
      if (i % 9 == 4) LLB_RETURN_IF_ERROR(engine->db()->FlushAll());
    }
    return engine->db()->FlushAll();
  };
  SweepCrashPoints(workload, SmallDb(WriteGraphKind::kTree,
                                     BackupPolicy::kTree),
                   "apprec");
}

TEST(CrashRecoveryTest, RecoveryIsIdempotentAcrossRepeatedCrashes) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TestEngine> engine,
      TestEngine::Create(SmallDb(WriteGraphKind::kTree, BackupPolicy::kTree)));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int64_t k = 0; k < 150; ++k) {
    ASSERT_OK(tree.Insert(k, "v" + std::to_string(k)));
  }
  ASSERT_OK(engine->db()->ForceLog());
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK(engine->CrashAndRecover());
    ASSERT_OK(VerifyAgainstOracle(engine.get(),
                                  "idem" + std::to_string(round)));
  }
  BTree reopened(engine->db(), 0, 0, SplitLogging::kLogical);
  for (int64_t k = 0; k < 150; ++k) {
    ASSERT_OK(reopened.Get(k).status());
  }
}

TEST(CrashRecoveryTest, UnforcedTailIsLostButConsistent) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TestEngine> engine,
      TestEngine::Create(SmallDb(WriteGraphKind::kTree, BackupPolicy::kTree)));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  ASSERT_OK(tree.Insert(1, Slice("durable")));
  ASSERT_OK(engine->db()->ForceLog());
  ASSERT_OK(tree.Insert(2, Slice("volatile")));  // never forced
  ASSERT_OK(engine->CrashAndRecover());
  BTree reopened(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(reopened.Get(1).status());
  EXPECT_TRUE(reopened.Get(2).status().IsNotFound());
  ASSERT_OK(VerifyAgainstOracle(engine.get(), "tail"));
}

TEST(CrashRecoveryTest, CheckpointBoundsRedoWork) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TestEngine> engine,
      TestEngine::Create(SmallDb(WriteGraphKind::kTree, BackupPolicy::kTree)));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int64_t k = 0; k < 100; ++k) ASSERT_OK(tree.Insert(k, Slice("v")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->Checkpoint());
  Lsn ckpt_start = engine->db()->cache()->RedoStartLsn();
  for (int64_t k = 100; k < 120; ++k) ASSERT_OK(tree.Insert(k, Slice("v")));
  ASSERT_OK(engine->db()->ForceLog());
  ASSERT_OK(engine->CrashAndRecover());
  // Correctness (not just performance): state matches oracle.
  ASSERT_OK(VerifyAgainstOracle(engine.get(), "ckpt"));
  EXPECT_GT(ckpt_start, 1u);
}

}  // namespace
}  // namespace llb
