#include <gtest/gtest.h>

#include <vector>

#include "io/mem_env.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace llb {
namespace {

LogRecord SampleRecord(Lsn lsn) {
  LogRecord rec;
  rec.lsn = lsn;
  rec.op_code = kOpBtreeInsert;
  rec.readset = {PageId{0, 1}, PageId{0, 2}};
  rec.writeset = {PageId{0, 2}};
  rec.payload = "payload-bytes";
  return rec;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec = SampleRecord(42);
  std::string buf;
  rec.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), rec.EncodedSize());

  Slice input(buf);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(&input, &out));
  EXPECT_EQ(out.lsn, 42u);
  EXPECT_EQ(out.op_code, kOpBtreeInsert);
  EXPECT_EQ(out.readset, rec.readset);
  EXPECT_EQ(out.writeset, rec.writeset);
  EXPECT_EQ(out.payload, "payload-bytes");
  EXPECT_TRUE(input.empty());
}

TEST(LogRecordTest, EmptySetsAndPayload) {
  LogRecord rec;
  rec.lsn = 1;
  rec.op_code = kOpCheckpoint;
  std::string buf;
  rec.EncodeTo(&buf);
  Slice input(buf);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(&input, &out));
  EXPECT_TRUE(out.readset.empty());
  EXPECT_TRUE(out.writeset.empty());
  EXPECT_TRUE(out.payload.empty());
}

TEST(LogRecordTest, TruncatedTailReportsEndOfLog) {
  LogRecord rec = SampleRecord(1);
  std::string buf;
  rec.EncodeTo(&buf);
  buf.resize(buf.size() - 3);
  Slice input(buf);
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodeFrom(&input, &out).IsNotFound());
}

TEST(LogRecordTest, CorruptBodyReportsCorruption) {
  LogRecord rec = SampleRecord(1);
  std::string buf;
  rec.EncodeTo(&buf);
  buf[10] ^= 0x7F;
  Slice input(buf);
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodeFrom(&input, &out).IsCorruption());
}

TEST(LogRecordTest, ClassificationHelpers) {
  LogRecord rec;
  rec.op_code = kOpIdentityWrite;
  EXPECT_TRUE(rec.IsIdentityWrite());
  EXPECT_TRUE(rec.IsBlindWrite());
  rec.op_code = kOpPhysicalWrite;
  EXPECT_FALSE(rec.IsIdentityWrite());
  EXPECT_TRUE(rec.IsBlindWrite());
  rec.op_code = kOpCheckpoint;
  EXPECT_TRUE(rec.IsCheckpoint());
}

TEST(LogWriterReaderTest, WriteForceRead) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("log", true));
  LogWriter writer(file);
  for (Lsn i = 1; i <= 5; ++i) ASSERT_OK(writer.Add(SampleRecord(i)));
  ASSERT_OK(writer.Force());

  LogReader reader(file);
  ASSERT_OK(reader.Init());
  LogRecord rec;
  Lsn expected = 1;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec.lsn, expected++);
  }
  EXPECT_EQ(expected, 6u);
}

TEST(LogWriterReaderTest, UnforcedRecordsInvisibleAfterCrash) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("log", true));
  LogWriter writer(file);
  ASSERT_OK(writer.Add(SampleRecord(1)));
  ASSERT_OK(writer.Force());
  ASSERT_OK(writer.Add(SampleRecord(2)));
  // no Force for record 2
  env.CrashAndRestart();

  LogReader reader(file);
  ASSERT_OK(reader.Init());
  LogRecord rec;
  int count = 0;
  while (reader.Next(&rec)) ++count;
  EXPECT_EQ(count, 1);
}

TEST(LogWriterReaderTest, ReaderStopsCleanlyAtTornTail) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("log", true));
  LogWriter writer(file);
  ASSERT_OK(writer.Add(SampleRecord(1)));
  ASSERT_OK(writer.Force());
  // Simulate a torn append: raw garbage after the valid record.
  ASSERT_OK(file->Append(Slice("\x40\x00\x00\x00garbage")));
  LogReader reader(file);
  ASSERT_OK(reader.Init());
  LogRecord rec;
  int count = 0;
  while (reader.Next(&rec)) ++count;
  EXPECT_EQ(count, 1);
}

TEST(LogManagerTest, AssignsDenseLsns) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  LogRecord a = SampleRecord(0), b = SampleRecord(0);
  EXPECT_EQ(log->Append(&a), 1u);
  EXPECT_EQ(log->Append(&b), 2u);
  EXPECT_EQ(log->next_lsn(), 3u);
}

TEST(LogManagerTest, ReopenContinuesLsnSequence) {
  MemEnv env;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                         LogManager::Open(&env, "log"));
    LogRecord a = SampleRecord(0);
    log->Append(&a);
    ASSERT_OK(log->Force());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  EXPECT_EQ(log->next_lsn(), 2u);
}

TEST(LogManagerTest, ScanFiltersByStartLsn) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  for (int i = 0; i < 5; ++i) {
    LogRecord rec = SampleRecord(0);
    log->Append(&rec);
  }
  ASSERT_OK(log->Force());
  std::vector<Lsn> seen;
  ASSERT_OK(log->Scan(3, [&](const LogRecord& rec) {
    seen.push_back(rec.lsn);
    return Status::OK();
  }));
  EXPECT_EQ(seen, (std::vector<Lsn>{3, 4, 5}));
}

TEST(LogManagerTest, DurableLsnAdvancesOnForce) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  LogRecord rec = SampleRecord(0);
  log->Append(&rec);
  EXPECT_LT(log->durable_lsn(), 1u);
  ASSERT_OK(log->Force());
  EXPECT_EQ(log->durable_lsn(), 1u);
}

TEST(LogManagerTest, StatsTrackIdentityRecords) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  LogRecord normal = SampleRecord(0);
  log->Append(&normal);
  LogRecord identity;
  identity.op_code = kOpIdentityWrite;
  identity.writeset = {PageId{0, 1}};
  identity.payload = std::string(kPageSize, 'x');
  log->Append(&identity);
  LogStats stats = log->stats();
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.identity_records, 1u);
  EXPECT_GT(stats.identity_bytes, kPageSize);
  EXPECT_GT(stats.bytes, stats.identity_bytes);
}

TEST(LogManagerTest, ScanAbortsOnCallbackError) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  for (int i = 0; i < 3; ++i) {
    LogRecord rec = SampleRecord(0);
    log->Append(&rec);
  }
  ASSERT_OK(log->Force());
  int calls = 0;
  Status s = log->Scan(1, [&](const LogRecord&) {
    ++calls;
    return Status::Internal("stop");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace llb
