#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "filestore/filestore.h"
#include "sim/harness.h"
#include "tests/test_util.h"
#include "torture/concurrent_torture.h"
#include "torture/crash_sweeper.h"
#include "torture/torture_util.h"

namespace llb {
namespace {

/// Crash-point sweeps: every scenario runs once to count its durability
/// events, then once per crash point k, recovering and verifying S (and
/// any completed backup chain) against the full-log oracle each time.
/// Workload sizes are the CI throttle — sweeps are quadratic in the
/// event count (see ScenarioOptions), so scenarios here stay small.

ScenarioOptions SmallScenario(ScenarioKind kind, WriteGraphKind graph) {
  ScenarioOptions scenario;
  scenario.kind = kind;
  scenario.graph = graph;
  scenario.seed = 7;
  scenario.pages_per_partition = 32;
  scenario.cache_pages = 16;
  scenario.backup_steps = 4;
  scenario.updates_pre = 10;
  scenario.updates_mid = 2;
  scenario.updates_post = 4;
  return scenario;
}

CrashSweepReport SweepAllPoints(ScenarioKind kind, WriteGraphKind graph) {
  CrashSweeper sweeper(SmallScenario(kind, graph));
  Result<CrashSweepReport> report = sweeper.Sweep(SweepOptions{});
  EXPECT_OK(report.status());
  return report.ok() ? *report : CrashSweepReport{};
}

TEST(CrashSweepTest, BackupScenarioAllPoints) {
  CrashSweepReport report =
      SweepAllPoints(ScenarioKind::kBackup, WriteGraphKind::kGeneral);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  // Every crash point recovered and verified against the oracle.
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  // Late crash points leave completed chains behind; each was restored.
  EXPECT_GT(report.backups_verified, 0u);
}

TEST(CrashSweepTest, ResumeScenarioAllPoints) {
  CrashSweepReport report =
      SweepAllPoints(ScenarioKind::kResume, WriteGraphKind::kTree);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
}

TEST(CrashSweepTest, ScrubScenarioAllPoints) {
  CrashSweepReport report =
      SweepAllPoints(ScenarioKind::kScrub, WriteGraphKind::kTree);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
  // Crash points between backup completion and the scenario's scrub leave
  // injected rot in a *complete* chain; salvage must detect + repair it.
  EXPECT_GT(report.salvage_scrub_repairs, 0u);
}

TEST(CrashSweepTest, BatchedBackupScenarioAllPoints) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kBatchedBackup, WriteGraphKind::kGeneral);
  // 32 pages / 4 steps = 8-page steps; batch 4 gives two buffered run
  // writes per step, so crashes land between the batch writes of one
  // step as well as on fence-advance and cursor events. queue_depth
  // routes the batched runs through the async deep-queue backend; the
  // durability-event count must stay deterministic regardless.
  scenario.batch_pages = 4;
  scenario.pipelined = true;
  scenario.queue_depth = 4;
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(SweepOptions{}));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
}

TEST(NestedCrashTest, CrashDuringRecoveryAfterBatchedBackupCrash) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kBatchedBackup, WriteGraphKind::kTree);
  scenario.batch_pages = 4;
  scenario.pipelined = true;
  scenario.queue_depth = 4;
  SweepOptions options;
  options.max_points = 4;
  options.nested_primary_points = 3;
  options.nested_max_points = 8;
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.nested_points_tested, 0u);
}

TEST(CrashSweepTest, ParallelBackupScenarioAllPoints) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kParallelBackup, WriteGraphKind::kGeneral);
  // Two partitions sharded across two pool workers; the scenario's
  // scripted fault kills partition 1's sweeper mid-step while partition 0
  // completes, so crash points land before, during, and after the
  // parallel abort + parallel Resume + parallel incremental.
  scenario.partitions = 2;
  scenario.sweep_threads = 2;
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(SweepOptions{}));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
}

TEST(CrashSweepTest, RestoreScenarioAllPoints) {
  CrashSweepReport report =
      SweepAllPoints(ScenarioKind::kRestore, WriteGraphKind::kGeneral);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_GT(report.backups_verified, 0u);
  // Crash points inside the wipe/restore window must take the marker
  // path: off-line re-restore instead of (unsound) crash redo.
  EXPECT_GT(report.salvage_restores, 0u);
}

TEST(CrashSweepTest, ParallelRestoreScenarioAllPoints) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kParallelRestore, WriteGraphKind::kGeneral);
  // Two partitions so the restore workers actually shard; multi-page
  // batched runs with prefetch over the async deep-queue backend. Crash
  // points inside the wipe/restore window must take the marker path and
  // re-run the *parallel* restore.
  scenario.partitions = 2;
  scenario.sweep_threads = 2;
  scenario.batch_pages = 8;
  scenario.pipelined = true;
  scenario.queue_depth = 4;
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(SweepOptions{}));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
  EXPECT_GT(report.salvage_restores, 0u);
}

TEST(CrashSweepTest, InstantRestoreScenarioAllPoints) {
  CrashSweepReport report =
      SweepAllPoints(ScenarioKind::kInstantRestore, WriteGraphKind::kGeneral);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_GT(report.backups_verified, 0u);
  // Crash points inside the wipe/instant-restore window — including
  // between a closure install and its bitmap save — resume the instant
  // restore from the durable bitmap (or restart it from scratch) rather
  // than running plain crash redo over a half-restored store.
  EXPECT_GT(report.salvage_restores, 0u);
}

TEST(CrashSweepTest, InstantRestoreScenarioTreeGraph) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kInstantRestore, WriteGraphKind::kTree);
  SweepOptions options;
  options.max_points = 24;  // general graph gets the all-points sweep above
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_LE(report.points_tested, 24u);
  EXPECT_GT(report.recoveries_verified, 0u);
}

TEST(NestedCrashTest, CrashDuringInstantRestoreSalvage) {
  SweepOptions options;
  options.max_points = 4;
  options.nested_primary_points = 3;
  options.nested_max_points = 8;
  CrashSweeper sweeper(
      SmallScenario(ScenarioKind::kInstantRestore, WriteGraphKind::kGeneral));
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.nested_points_tested, 0u);
}

TEST(CrashSweepTest, LogShippingScenarioAllPoints) {
  CrashSweepReport report =
      SweepAllPoints(ScenarioKind::kLogShipping, WriteGraphKind::kTree);
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  // Crash points after the standby exists salvage BOTH sides (primary +
  // standby oracle checks), so recoveries exceed the point count.
  EXPECT_GT(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
  // Crash points inside the PITR window take the marker path.
  EXPECT_GT(report.salvage_restores, 0u);
}

TEST(CrashSweepTest, LogShippingScenarioGeneralGraph) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kLogShipping, WriteGraphKind::kGeneral);
  SweepOptions options;
  options.max_points = 24;  // tree graph gets the all-points sweep above
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_LE(report.points_tested, 24u);
  EXPECT_GT(report.recoveries_verified, report.points_tested);
}

TEST(NestedCrashTest, CrashDuringLogShippingSalvage) {
  SweepOptions options;
  options.max_points = 4;
  options.nested_primary_points = 3;
  options.nested_max_points = 8;
  CrashSweeper sweeper(
      SmallScenario(ScenarioKind::kLogShipping, WriteGraphKind::kTree));
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.nested_points_tested, 0u);
}

TEST(CrashSweepTest, SweepIsDeterministic) {
  SweepOptions options;
  options.max_points = 10;
  CrashSweeper a(SmallScenario(ScenarioKind::kBackup, WriteGraphKind::kTree));
  CrashSweeper b(SmallScenario(ScenarioKind::kBackup, WriteGraphKind::kTree));
  ASSERT_OK_AND_ASSIGN(CrashSweepReport ra, a.Sweep(options));
  ASSERT_OK_AND_ASSIGN(CrashSweepReport rb, b.Sweep(options));
  EXPECT_EQ(ra.total_events, rb.total_events);
  EXPECT_EQ(ra.points_tested, rb.points_tested);
  EXPECT_EQ(ra.recoveries_verified, rb.recoveries_verified);
  EXPECT_EQ(ra.backups_verified, rb.backups_verified);
  EXPECT_EQ(ra.ToString(), rb.ToString());
}

/// Nested crashes: crash at event k, then crash the recovery/salvage that
/// follows at its own event j, then salvage for real. Early j values land
/// inside crash recovery's redo, late ones inside chain verification and
/// the salvage restore — including the scrub-repair path for kScrub.

TEST(NestedCrashTest, CrashDuringRecoveryAfterBackupCrash) {
  SweepOptions options;
  options.max_points = 4;  // primary-only points kept cheap
  options.nested_primary_points = 3;
  options.nested_max_points = 8;
  CrashSweeper sweeper(
      SmallScenario(ScenarioKind::kBackup, WriteGraphKind::kGeneral));
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.nested_points_tested, 0u);
}

TEST(NestedCrashTest, CrashDuringScrubRepairSalvage) {
  SweepOptions options;
  options.max_points = 4;
  options.nested_primary_points = 3;
  options.nested_max_points = 8;
  CrashSweeper sweeper(
      SmallScenario(ScenarioKind::kScrub, WriteGraphKind::kTree));
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.nested_points_tested, 0u);
}

/// Deterministic flush-vs-fence interleaving: a mid-step hook runs while
/// the Doubt window [D, P) is real (P advanced, pages not yet copied) and
/// flushes one page per region. Under BackupPolicy::kGeneral the protocol
/// is exact: Done and Doubt flushes take the identity-write path and are
/// logged; Pend flushes are not.
TEST(FenceProtocolTest, MidStepFlushPerRegionTakesExactPath) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 32;
  options.cache_pages = 16;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  TortureEngine engine(options);
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();

  // One-page files: file i occupies exactly page i.
  FileStore files(db, /*partition=*/0, /*base_page=*/0, /*pages_per_file=*/1,
                  /*num_files=*/32);
  for (uint32_t f = 0; f < 32; ++f) {
    ASSERT_OK(files.WriteValues(f, {static_cast<int64_t>(f), 1}));
  }
  ASSERT_OK(db->FlushAll());
  ASSERT_OK(db->Checkpoint());

  // steps=4 over 32 pages: during step 2 (1-based, P advanced to 16,
  // D still 8) the regions are
  // Done = [0, 8), Doubt = [8, 16), Pend = [16, 32).
  auto flush_file = [&](uint32_t f) -> Status {
    LLB_RETURN_IF_ERROR(files.WriteValues(f, {static_cast<int64_t>(f), 2}));
    return db->FlushPage(files.PagesOf(f)[0]);
  };
  bool checked = false;
  BackupJobOptions job;
  job.steps = 4;
  job.mid_step = [&](PartitionId, uint32_t step) -> Status {
    if (step != 2) return Status::OK();
    checked = true;
    CacheStats before = db->cache()->stats();
    LLB_RETURN_IF_ERROR(flush_file(2));  // Done
    CacheStats after_done = db->cache()->stats();
    EXPECT_EQ(after_done.region_done, before.region_done + 1);
    EXPECT_EQ(after_done.identity_writes, before.identity_writes + 1);
    EXPECT_EQ(after_done.decisions_logged, before.decisions_logged + 1);

    LLB_RETURN_IF_ERROR(flush_file(10));  // Doubt
    CacheStats after_doubt = db->cache()->stats();
    EXPECT_EQ(after_doubt.region_doubt, after_done.region_doubt + 1);
    EXPECT_EQ(after_doubt.identity_writes, after_done.identity_writes + 1);
    EXPECT_EQ(after_doubt.decisions_logged, after_done.decisions_logged + 1);

    LLB_RETURN_IF_ERROR(flush_file(20));  // Pend
    CacheStats after_pend = db->cache()->stats();
    EXPECT_EQ(after_pend.region_pend, after_doubt.region_pend + 1);
    EXPECT_EQ(after_pend.identity_writes, after_doubt.identity_writes);
    EXPECT_EQ(after_pend.decisions_logged, after_doubt.decisions_logged);
    return Status::OK();
  };
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       db->TakeBackupWithOptions("fence_bk", job));
  EXPECT_TRUE(manifest.complete);
  EXPECT_TRUE(checked);

  // The chain took identity writes mid-sweep; it must still verify and
  // carry a full media recovery.
  ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("fence_bk"));
  EXPECT_TRUE(verify.clean());
  ASSERT_OK(torture::VerifyOpenDb(&engine));
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "fence_bk", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

/// Racing flushes vs a live sweep: a foreground thread hammers writes and
/// flushes while the backup advances the fences. The kGeneral decision
/// counters are exact, so even under an arbitrary interleaving:
///   decisions_logged == region_done + region_doubt
///   decisions - decisions_logged == region_pend
TEST(FenceProtocolTest, RacingFlushesKeepDecisionCountersExact) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 64;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  TortureEngine engine(options);
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();

  FileStore files(db, 0, 0, 1, 64);
  for (uint32_t f = 0; f < 64; ++f) {
    ASSERT_OK(files.WriteValues(f, {static_cast<int64_t>(f)}));
  }
  ASSERT_OK(db->FlushAll());
  ASSERT_OK(db->Checkpoint());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> flushes{0};
  Status flusher_status;
  std::thread flusher([&] {
    uint64_t x = 1;
    while (!stop.load(std::memory_order_acquire)) {
      uint32_t f = static_cast<uint32_t>((x * 2654435761u) % 64);
      x++;
      Status s = files.WriteValues(f, {static_cast<int64_t>(x)});
      if (s.ok()) s = db->FlushPage(files.PagesOf(f)[0]);
      if (!s.ok()) {
        flusher_status = s;
        return;
      }
      flushes.fetch_add(1, std::memory_order_release);
    }
  });
  // Each step waits (bounded) for the flusher to land at least one flush
  // while the fences are up, so the sweep genuinely overlaps updates even
  // on a loaded machine where the flusher thread would otherwise starve.
  BackupJobOptions job;
  job.steps = 8;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    uint64_t seen = flushes.load(std::memory_order_acquire);
    for (int spin = 0; spin < (1 << 20); ++spin) {
      if (flushes.load(std::memory_order_acquire) > seen) break;
      std::this_thread::yield();
    }
    return Status::OK();
  };
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(
        BackupManifest manifest,
        db->TakeBackupWithOptions("race_bk_" + std::to_string(i), job));
    EXPECT_TRUE(manifest.complete);
  }
  stop.store(true, std::memory_order_release);
  flusher.join();
  ASSERT_OK(flusher_status);

  CacheStats stats = db->cache()->stats();
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_EQ(stats.decisions_logged, stats.region_done + stats.region_doubt);
  EXPECT_EQ(stats.decisions - stats.decisions_logged, stats.region_pend);

  ASSERT_OK(db->FlushAll());
  ASSERT_OK(db->ForceLog());
  ASSERT_OK(torture::VerifyOpenDb(&engine));
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(ScrubReport verify,
                         db->VerifyBackup("race_bk_" + std::to_string(i)));
    EXPECT_TRUE(verify.clean());
  }
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "race_bk_3", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

// Grouped-commit crash sweeps: log_channels=4 shards the WAL, so crash
// points land between a channel seal and the epoch publish, and flushes
// during the sweep take the overlapped three-phase install. Recovery and
// backup verification must be oblivious to the sharding.
TEST(CrashSweepTest, BackupScenarioGroupedChannels) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kBackup, WriteGraphKind::kGeneral);
  scenario.log_channels = 4;
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(SweepOptions{}));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_EQ(report.points_tested, report.total_events);
  EXPECT_EQ(report.recoveries_verified, report.points_tested);
  EXPECT_GT(report.backups_verified, 0u);
}

TEST(CrashSweepTest, LogShippingScenarioGroupedChannels) {
  ScenarioOptions scenario =
      SmallScenario(ScenarioKind::kLogShipping, WriteGraphKind::kTree);
  scenario.log_channels = 4;
  SweepOptions options;
  options.max_points = 24;  // single-channel gets the all-points sweep above
  CrashSweeper sweeper(scenario);
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, sweeper.Sweep(options));
  EXPECT_GT(report.total_events, 0u);
  EXPECT_LE(report.points_tested, 24u);
  EXPECT_GT(report.recoveries_verified, report.points_tested);
}

TEST(ConcurrentTortureTest, UpdatersRaceBackupsAndStatsPoller) {
  ConcurrentTortureOptions options;
  options.seed = 11;
  options.partitions = 2;
  options.pages_per_partition = 64;
  options.cache_pages = 32;
  options.updates_per_thread = 200;
  options.backup_steps = 8;
  options.backups = 3;
  options.poll_stats = true;
  ASSERT_OK_AND_ASSIGN(ConcurrentTortureReport report,
                       RunConcurrentTorture(options));
  EXPECT_EQ(report.updates_applied,
            static_cast<uint64_t>(options.partitions) *
                options.updates_per_thread);
  EXPECT_EQ(report.backups_completed, options.backups);
  EXPECT_GT(report.pages_copied, 0u);
}

TEST(ConcurrentTortureTest, UpdatersRaceBackupsOnGroupedChannels) {
  ConcurrentTortureOptions options;
  options.seed = 13;
  options.partitions = 2;
  options.pages_per_partition = 64;
  options.cache_pages = 32;
  options.updates_per_thread = 200;
  options.backup_steps = 8;
  options.backups = 3;
  options.poll_stats = true;
  options.log_channels = 4;
  ASSERT_OK_AND_ASSIGN(ConcurrentTortureReport report,
                       RunConcurrentTorture(options));
  EXPECT_EQ(report.updates_applied,
            static_cast<uint64_t>(options.partitions) *
                options.updates_per_thread);
  EXPECT_EQ(report.backups_completed, options.backups);
  EXPECT_GT(report.pages_copied, 0u);
}

}  // namespace
}  // namespace llb
