#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "tests/test_util.h"

namespace llb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "Corruption: bad page");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<int> codes;
  for (const Status& s :
       {Status::InvalidArgument("x"), Status::NotFound("x"),
        Status::IoError("x"), Status::Corruption("x"),
        Status::NotSupported("x"), Status::FailedPrecondition("x"),
        Status::Internal("x"), Status::AlreadyExists("x"),
        Status::Unrecoverable("x")}) {
    codes.insert(static_cast<int>(s.code()));
  }
  EXPECT_EQ(codes.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> HalveOrFail(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int in, int* out) {
  LLB_ASSIGN_OR_RETURN(*out, HalveOrFail(in));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_OK(UseAssignOrReturn(8, &out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UseAssignOrReturn(7, &out).ok());
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  SliceReader reader{Slice(buf)};
  uint16_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
  ASSERT_TRUE(reader.ReadFixed16(&a));
  ASSERT_TRUE(reader.ReadFixed32(&b));
  ASSERT_TRUE(reader.ReadFixed64(&c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, UINT64_MAX};
  for (uint64_t v : values) PutVarint64(&buf, v);
  SliceReader reader{Slice(buf)};
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.ReadVarint64(&got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  SliceReader reader{Slice(buf)};
  Slice a, b;
  ASSERT_TRUE(reader.ReadLengthPrefixed(&a));
  ASSERT_TRUE(reader.ReadLengthPrefixed(&b));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, PageIdRoundTrip) {
  std::string buf;
  PutPageId(&buf, PageId{3, 77});
  SliceReader reader{Slice(buf)};
  PageId id;
  ASSERT_TRUE(reader.ReadPageId(&id));
  EXPECT_EQ(id, (PageId{3, 77}));
}

TEST(CodingTest, TruncatedInputFailsCleanly) {
  std::string buf;
  PutFixed64(&buf, 12345);
  buf.resize(4);
  SliceReader reader{Slice(buf)};
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadFixed64(&v));
}

TEST(CodingTest, MalformedVarintFails) {
  std::string buf(11, '\x80');  // never-terminating varint
  SliceReader reader{Slice(buf)};
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadVarint64(&v));
}

TEST(Crc32cTest, KnownProperties) {
  // Distinct inputs yield distinct CRCs; extension matches one-shot.
  uint32_t a = crc32c::Value("hello", 5);
  uint32_t b = crc32c::Value("hellp", 5);
  EXPECT_NE(a, b);
  uint32_t ext = crc32c::Extend(crc32c::Value("he", 2), "llo", 3);
  EXPECT_EQ(ext, a);
}

TEST(Crc32cTest, StandardVector) {
  // CRC-32C of "123456789" is 0xE3069283 (well-known check value).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("data", 4);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  EXPECT_NE(crc32c::Mask(crc), crc);
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RandomTest, ZipfSkewsLow) {
  Random rng(5);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.9) < 100) ++low;
  }
  EXPECT_GT(low, 5000);  // heavily skewed to low ranks
}

TEST(SliceTest, BasicsAndEquality) {
  std::string s = "abcdef";
  Slice a(s);
  EXPECT_EQ(a.size(), 6u);
  a.RemovePrefix(2);
  EXPECT_EQ(a.ToString(), "cdef");
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_FALSE(Slice("x") == Slice("y"));
}

TEST(TypesTest, PageIdOrderingMatchesBackupOrder) {
  EXPECT_LT((PageId{0, 1}), (PageId{0, 2}));
  EXPECT_LT((PageId{0, 9}), (PageId{1, 0}));
  EXPECT_EQ(BackupPositionOf(PageId{3, 42}), 42u);
}

}  // namespace
}  // namespace llb
