#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "common/crc32c.h"
#include "common/random.h"
#include "storage/page.h"

namespace llb {
namespace {

/// The hardware CRC32C path (SSE4.2 / ARMv8, dispatched at first use)
/// must agree bit-for-bit with the table-driven software implementation
/// on every input shape — every checksummed page in every store depends
/// on the two being interchangeable across machines.

uint32_t Software(const char* data, size_t n) {
  return crc32c::internal::ExtendSoftware(0, data, n);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors (iSCSI CRC32C).
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62a8ab43u);
  std::string inc(32, '\0');
  for (int i = 0; i < 32; ++i) inc[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(inc.data(), inc.size()), 0x46dd794eu);
}

TEST(Crc32cTest, DispatchAgreesWithSoftwareOnAdversarialShapes) {
  // Shapes that stress the hardware kernel's 8-byte main loop and its
  // byte tail: empty, single byte, sub-word, word-1, word, word+1, a
  // full page, and a page plus a straggler crossing the loop boundary.
  const size_t shapes[] = {0, 1, 3, 7, 8, 9, 63, 64, 65,
                           kPageSize - 1, kPageSize, kPageSize + 1};
  Random rng(20260809);
  for (size_t n : shapes) {
    std::string data(n, '\0');
    for (size_t i = 0; i < n; ++i) {
      data[i] = static_cast<char>(rng.Uniform(256));
    }
    EXPECT_EQ(crc32c::Value(data.data(), n), Software(data.data(), n))
        << "shape " << n;
  }
}

TEST(Crc32cTest, DispatchAgreesWithSoftwareOnRandomInputs) {
  Random rng(7);
  for (int round = 0; round < 200; ++round) {
    size_t n = rng.Uniform(3 * kPageSize) + 1;
    std::string data(n, '\0');
    for (size_t i = 0; i < n; ++i) {
      data[i] = static_cast<char>(rng.Uniform(256));
    }
    ASSERT_EQ(crc32c::Value(data.data(), n), Software(data.data(), n));
  }
}

TEST(Crc32cTest, ExtendComposesAcrossSplitPoints) {
  // Extend(Extend(0, a), b) == Value(a+b) for both backends, including
  // split points that leave the second half misaligned.
  Random rng(11);
  std::string data(2 * kPageSize, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(rng.Uniform(256));
  }
  uint32_t whole = crc32c::Value(data.data(), data.size());
  for (size_t split : {size_t{1}, size_t{5}, size_t{8}, size_t{4095},
                       size_t{4096}, size_t{4097}}) {
    uint32_t a = crc32c::Extend(0, data.data(), split);
    uint32_t composed =
        crc32c::Extend(a, data.data() + split, data.size() - split);
    EXPECT_EQ(composed, whole) << "split " << split;
    uint32_t sw_a = crc32c::internal::ExtendSoftware(0, data.data(), split);
    uint32_t sw = crc32c::internal::ExtendSoftware(
        sw_a, data.data() + split, data.size() - split);
    EXPECT_EQ(sw, whole) << "software split " << split;
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    uint32_t crc = static_cast<uint32_t>(rng.Next());
    uint32_t masked = crc32c::Mask(crc);
    EXPECT_NE(masked, crc);  // masking must change the value
    EXPECT_EQ(crc32c::Unmask(masked), crc);
  }
}

TEST(Crc32cTest, BackendIsHardwareWhenCpuSupportsIt) {
  const char* backend = crc32c::Backend();
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("sse4.2")) {
    EXPECT_STREQ(backend, "sse4.2");
  } else {
    EXPECT_STREQ(backend, "software");
  }
#else
  // Other architectures: whatever the dispatch picked, it must be one of
  // the known names (armv8 on CRC-capable ARM, software elsewhere).
  EXPECT_TRUE(std::strcmp(backend, "software") == 0 ||
              std::strcmp(backend, "armv8-crc") == 0)
      << backend;
#endif
}

}  // namespace
}  // namespace llb
