#include <gtest/gtest.h>

#include <memory>

#include "backup/backup_job.h"
#include "backup/backup_progress.h"
#include "backup/backup_store.h"
#include "backup/incremental_tracker.h"
#include "io/mem_env.h"
#include "tests/test_util.h"

namespace llb {
namespace {

TEST(BackupProgressTest, InactiveMeansEverythingPending) {
  BackupProgress progress;
  EXPECT_FALSE(progress.active());
  EXPECT_EQ(progress.Classify(0), BackupRegion::kPend);
  EXPECT_EQ(progress.Classify(999), BackupRegion::kPend);
}

TEST(BackupProgressTest, RegionsFollowFences) {
  BackupProgress progress;
  progress.SetPendingFence(10);
  progress.SetDoneFence();     // D = 10
  progress.SetPendingFence(20);
  EXPECT_TRUE(progress.active());
  EXPECT_EQ(progress.Classify(9), BackupRegion::kDone);
  EXPECT_EQ(progress.Classify(10), BackupRegion::kDoubt);
  EXPECT_EQ(progress.Classify(19), BackupRegion::kDoubt);
  EXPECT_EQ(progress.Classify(20), BackupRegion::kPend);
}

TEST(BackupProgressTest, ResetReturnsToInactive) {
  BackupProgress progress;
  progress.SetPendingFence(10);
  progress.Reset();
  EXPECT_FALSE(progress.active());
  EXPECT_EQ(progress.Classify(0), BackupRegion::kPend);
}

TEST(BackupProgressTest, FenceUpdateCountTracksSyncCost) {
  BackupProgress progress;
  uint64_t before = progress.fence_updates();
  progress.SetPendingFence(5);
  progress.SetDoneFence();
  progress.Reset();
  EXPECT_EQ(progress.fence_updates() - before, 3u);
}

TEST(BackupCoordinatorTest, OneProgressPerPartition) {
  BackupCoordinator coordinator(3);
  EXPECT_EQ(coordinator.num_partitions(), 3u);
  coordinator.Get(1)->SetPendingFence(4);
  EXPECT_TRUE(coordinator.Get(1)->active());
  EXPECT_FALSE(coordinator.Get(0)->active());
  EXPECT_FALSE(coordinator.Get(2)->active());
}

TEST(BackupManifestTest, SaveLoadRoundTrip) {
  MemEnv env;
  BackupManifest m;
  m.name = "bk1";
  m.start_lsn = 7;
  m.end_lsn = 99;
  m.partitions = 2;
  m.pages_per_partition = 64;
  m.steps = 8;
  m.complete = true;
  m.incremental = true;
  m.base_name = "bk0";
  m.pages = {PageId{0, 3}, PageId{1, 5}};
  ASSERT_OK(m.Save(&env));

  ASSERT_OK_AND_ASSIGN(BackupManifest loaded, BackupManifest::Load(&env, "bk1"));
  EXPECT_EQ(loaded.name, "bk1");
  EXPECT_EQ(loaded.start_lsn, 7u);
  EXPECT_EQ(loaded.end_lsn, 99u);
  EXPECT_EQ(loaded.partitions, 2u);
  EXPECT_EQ(loaded.pages_per_partition, 64u);
  EXPECT_EQ(loaded.steps, 8u);
  EXPECT_TRUE(loaded.complete);
  EXPECT_TRUE(loaded.incremental);
  EXPECT_EQ(loaded.base_name, "bk0");
  EXPECT_EQ(loaded.pages, m.pages);
}

TEST(BackupManifestTest, LoadMissingFails) {
  MemEnv env;
  EXPECT_FALSE(BackupManifest::Load(&env, "nope").ok());
}

TEST(BackupManifestTest, CorruptManifestDetected) {
  MemEnv env;
  BackupManifest m;
  m.name = "bk";
  ASSERT_OK(m.Save(&env));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f,
                       env.OpenFile("bk.manifest", false));
  ASSERT_OK(f->WriteAt(5, Slice("XX")));
  EXPECT_TRUE(BackupManifest::Load(&env, "bk").status().IsCorruption());
}

TEST(IncrementalTrackerTest, TracksAndClears) {
  IncrementalTracker tracker;
  tracker.OnPageFlushed(PageId{0, 5});
  tracker.OnPageFlushed(PageId{0, 2});
  tracker.OnPageFlushed(PageId{0, 5});  // duplicate
  EXPECT_EQ(tracker.PendingCount(), 2u);
  auto pages = tracker.SnapshotAndClear();
  EXPECT_EQ(pages, (std::vector<PageId>{PageId{0, 2}, PageId{0, 5}}));
  EXPECT_EQ(tracker.PendingCount(), 0u);
}

class BackupJobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = PageStore::Open(&env_, "stable", kPartitions);
    ASSERT_TRUE(store.ok());
    stable_ = std::move(store).value();
    auto log = LogManager::Open(&env_, "log");
    ASSERT_TRUE(log.ok());
    log_ = std::move(log).value();
    coordinator_ = std::make_unique<BackupCoordinator>(kPartitions);

    // Populate the stable database.
    for (uint32_t p = 0; p < kPartitions; ++p) {
      for (uint32_t page = 0; page < kPages; ++page) {
        PageImage image;
        std::string content = "p" + std::to_string(p) + ":" +
                              std::to_string(page);
        image.SetPayload(Slice(content));
        image.set_lsn(page + 1);
        ASSERT_OK(stable_->WritePage(PageId{p, page}, image));
      }
    }
  }

  static constexpr uint32_t kPartitions = 2;
  static constexpr uint32_t kPages = 32;

  MemEnv env_;
  std::unique_ptr<PageStore> stable_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BackupCoordinator> coordinator_;
};

TEST_F(BackupJobTest, FullBackupCopiesEveryPage) {
  BackupJobOptions options;
  options.steps = 4;
  BackupJob job(&env_, stable_.get(), coordinator_.get(), log_.get(), kPages,
                options);
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest, job.Run("bk", 1));
  EXPECT_TRUE(manifest.complete);
  EXPECT_EQ(job.stats().pages_copied, uint64_t{kPartitions} * kPages);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> backup,
                       PageStore::Open(&env_, manifest.StoreName(),
                                       kPartitions));
  EXPECT_EQ(testutil::DiffStores(*stable_, *backup, kPartitions, kPages), "");
}

TEST_F(BackupJobTest, ProgressResetAfterCompletion) {
  BackupJob job(&env_, stable_.get(), coordinator_.get(), log_.get(), kPages,
                BackupJobOptions{});
  ASSERT_OK(job.Run("bk", 1).status());
  for (uint32_t p = 0; p < kPartitions; ++p) {
    EXPECT_FALSE(coordinator_->Get(p)->active());
  }
}

TEST_F(BackupJobTest, StepCountControlsFenceUpdates) {
  BackupJobOptions few, many;
  few.steps = 1;
  many.steps = 16;
  BackupJob job_few(&env_, stable_.get(), coordinator_.get(), log_.get(),
                    kPages, few);
  ASSERT_OK(job_few.Run("bk1", 1).status());
  uint64_t fences_few = job_few.stats().fence_updates;
  BackupJob job_many(&env_, stable_.get(), coordinator_.get(), log_.get(),
                     kPages, many);
  ASSERT_OK(job_many.Run("bk2", 1).status());
  EXPECT_GT(job_many.stats().fence_updates, fences_few);
}

TEST_F(BackupJobTest, ParallelPartitionsProduceSameBackup) {
  BackupJobOptions options;
  options.steps = 4;
  options.parallel_partitions = true;
  BackupJob job(&env_, stable_.get(), coordinator_.get(), log_.get(), kPages,
                options);
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest, job.Run("bkp", 1));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> backup,
                       PageStore::Open(&env_, manifest.StoreName(),
                                       kPartitions));
  EXPECT_EQ(testutil::DiffStores(*stable_, *backup, kPartitions, kPages), "");
}

TEST_F(BackupJobTest, MidStepHookObservesDoubtWindow) {
  BackupJobOptions options;
  options.steps = 4;
  int calls = 0;
  options.mid_step = [&](PartitionId partition, uint32_t step) {
    ++calls;
    BackupProgress* progress = coordinator_->Get(partition);
    std::shared_lock<std::shared_mutex> latch(progress->latch());
    EXPECT_TRUE(progress->active());
    EXPECT_LT(progress->done_fence(), progress->pending_fence());
    EXPECT_EQ(progress->pending_fence(),
              step == 4 ? kPages : (kPages * step) / 4);
    return Status::OK();
  };
  BackupJob job(&env_, stable_.get(), coordinator_.get(), log_.get(), kPages,
                options);
  ASSERT_OK(job.Run("bk", 1).status());
  EXPECT_EQ(calls, 8);  // 4 steps x 2 partitions
}

TEST_F(BackupJobTest, IncrementalCopiesOnlyListedPages) {
  BackupJobOptions options;
  options.steps = 2;
  BackupJob job(&env_, stable_.get(), coordinator_.get(), log_.get(), kPages,
                options);
  std::vector<PageId> changed{PageId{0, 3}, PageId{1, 7}, PageId{1, 30}};
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       job.RunIncremental("inc", "base", 5, changed));
  EXPECT_TRUE(manifest.incremental);
  EXPECT_EQ(manifest.base_name, "base");
  EXPECT_EQ(manifest.pages.size(), 3u);
  EXPECT_EQ(job.stats().pages_copied, 3u);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> backup,
                       PageStore::Open(&env_, manifest.StoreName(),
                                       kPartitions));
  PageImage copied, untouched;
  ASSERT_OK(backup->ReadPage(PageId{0, 3}, &copied));
  EXPECT_FALSE(copied.IsZero());
  ASSERT_OK(backup->ReadPage(PageId{0, 4}, &untouched));
  EXPECT_TRUE(untouched.IsZero());
}

TEST_F(BackupJobTest, FirstStepDoubtWindowCoversStart) {
  // With one step, the whole partition is in doubt during the sweep.
  BackupJobOptions options;
  options.steps = 1;
  bool checked = false;
  options.mid_step = [&](PartitionId partition, uint32_t) {
    BackupProgress* progress = coordinator_->Get(partition);
    std::shared_lock<std::shared_mutex> latch(progress->latch());
    EXPECT_EQ(progress->Classify(0), BackupRegion::kDoubt);
    EXPECT_EQ(progress->Classify(kPages - 1), BackupRegion::kDoubt);
    EXPECT_EQ(progress->Classify(kPages), BackupRegion::kPend);
    checked = true;
    return Status::OK();
  };
  BackupJob job(&env_, stable_.get(), coordinator_.get(), log_.get(), kPages,
                options);
  ASSERT_OK(job.Run("bk", 1).status());
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace llb
