// Corruption fuzzing for the durable formats: whatever bytes a crash or a
// bad device leaves behind, the readers must fail cleanly (graceful
// prefix for the log, all-or-nothing for the page-store journal,
// checksum errors for pages) — never crash, never fabricate records.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "io/mem_env.h"
#include "storage/page_store.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"

namespace llb {
namespace {

LogRecord SampleRecord(uint32_t i) {
  LogRecord rec;
  rec.op_code = kOpBtreeInsert;
  rec.readset = {PageId{0, i}};
  rec.writeset = {PageId{0, i}};
  rec.payload = std::string(1 + i % 40, static_cast<char>('a' + i % 26));
  return rec;
}

class LogTruncationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogTruncationFuzz, AnyTruncationYieldsCleanPrefix) {
  Random rng(GetParam());
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  const int kRecords = 40;
  for (uint32_t i = 0; i < kRecords; ++i) {
    LogRecord rec = SampleRecord(i);
    log->Append(&rec);
  }
  ASSERT_OK(log->Force());

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("log", false));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());

  for (int trial = 0; trial < 25; ++trial) {
    uint64_t cut = rng.Uniform(size + 1);
    MemEnv copy_env;
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> copy,
                         copy_env.OpenFile("log", true));
    std::string contents;
    ASSERT_OK(file->ReadAt(0, cut, &contents));
    ASSERT_OK(copy->Append(Slice(contents)));
    ASSERT_OK(copy->Sync());

    LogReader reader(copy);
    ASSERT_OK(reader.Init());
    LogRecord rec;
    Lsn expected = 1;
    while (reader.Next(&rec)) {
      // Records decode as an exact prefix, in order, intact.
      ASSERT_EQ(rec.lsn, expected);
      ASSERT_EQ(rec.op_code, kOpBtreeInsert);
      ++expected;
    }
    ASSERT_LE(expected - 1, uint64_t{kRecords});
  }
}

TEST_P(LogTruncationFuzz, RandomByteFlipsNeverCrashTheReader) {
  Random rng(GetParam() + 1000);
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  for (uint32_t i = 0; i < 30; ++i) {
    LogRecord rec = SampleRecord(i);
    log->Append(&rec);
  }
  ASSERT_OK(log->Force());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("log", false));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  std::string original;
  ASSERT_OK(file->ReadAt(0, size, &original));

  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = original;
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    MemEnv copy_env;
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> copy,
                         copy_env.OpenFile("log", true));
    ASSERT_OK(copy->Append(Slice(mutated)));
    ASSERT_OK(copy->Sync());

    LogReader reader(copy);
    ASSERT_OK(reader.Init());
    LogRecord rec;
    Lsn last = 0;
    while (reader.Next(&rec)) {
      // Whatever survives is CRC-clean and ordered.
      ASSERT_GT(rec.lsn, last);
      last = rec.lsn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogTruncationFuzz,
                         ::testing::Values(11, 22, 33, 44));

class JournalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalFuzz, CorruptJournalNeverAppliesPartially) {
  Random rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    MemEnv env;
    {
      // Write a batch, then corrupt the journal bytes mid-flight by
      // crafting the state a crash-during-step-1 would leave: journal
      // contents present but damaged, pages untouched.
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                           PageStore::Open(&env, "s", 1));
      PageImage old_page;
      old_page.SetPayload(Slice("old"));
      old_page.set_lsn(1);
      for (uint32_t i = 0; i < 4; ++i) {
        ASSERT_OK(store->WritePage(PageId{0, i}, old_page));
      }
      std::vector<PageStore::Entry> batch;
      for (uint32_t i = 0; i < 4; ++i) {
        PageImage new_page;
        new_page.SetPayload(Slice("new"));
        new_page.set_lsn(2);
        batch.push_back({PageId{0, i}, new_page});
      }
      ASSERT_OK(store->WriteBatchAtomic(batch));
    }
    // Corrupt random bytes of the journal region + re-inject a stale
    // journal by copying it back (simulating torn journal content).
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> journal,
                         env.OpenFile("s.journal", false));
    std::string stale;
    // Build a corrupt journal blob: random garbage of random size.
    size_t len = 8 + rng.Uniform(4096);
    stale.resize(len);
    for (size_t i = 0; i < len; ++i) {
      stale[i] = static_cast<char>(rng.Next() & 0xFF);
    }
    ASSERT_OK(journal->Truncate(0));
    ASSERT_OK(journal->WriteAt(0, Slice(stale)));
    ASSERT_OK(journal->Sync());

    // Reopen: recovery must discard the garbage journal and leave the
    // pages exactly as they were (all "new" from the committed batch).
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> reopened,
                         PageStore::Open(&env, "s", 1));
    for (uint32_t i = 0; i < 4; ++i) {
      PageImage page;
      ASSERT_OK(reopened->ReadPage(PageId{0, i}, &page));
      ASSERT_EQ(page.lsn(), 2u);
    }
    // And the journal is cleared.
    ASSERT_OK_AND_ASSIGN(uint64_t jsize, journal->Size());
    ASSERT_EQ(jsize, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalFuzz, ::testing::Values(7, 17, 27));

TEST(PageFuzzTest, RandomPageBytesFailChecksumOrDecodeDefensively) {
  Random rng(5150);
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                       PageStore::Open(&env, "s", 1));
  for (int trial = 0; trial < 30; ++trial) {
    // Write random garbage directly into the partition file.
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file,
                         env.OpenFile("s.p0", false));
    std::string junk(kPageSize, '\0');
    for (size_t i = 0; i < junk.size(); ++i) {
      junk[i] = static_cast<char>(rng.Next() & 0xFF);
    }
    ASSERT_OK(file->WriteAt(0, Slice(junk)));
    ASSERT_OK(file->Sync());
    PageImage page;
    Status s = store->ReadPage(PageId{0, 0}, &page);
    // Either detected as corruption (overwhelmingly likely) or decoded
    // as a page — never a crash.
    if (!s.ok()) {
      EXPECT_TRUE(s.IsCorruption());
    }
  }
}

}  // namespace
}  // namespace llb
