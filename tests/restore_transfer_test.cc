#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "filestore/filestore.h"
#include "io/transfer_pipeline.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "sim/oracle.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"

namespace llb {
namespace {

/// Coverage of the restore side of the shared TransferPipeline: batching,
/// prefetch pipelining and partition-sharded restore workers must all be
/// pure scheduling changes (the restored S is byte-identical to the
/// serial per-page restore), and the chain-coalescing apply must land
/// every page exactly once, from the newest chain member carrying it.

constexpr uint32_t kPartitions = 4;
constexpr uint32_t kPages = 32;

DbOptions RestoreDb() {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  return options;
}

/// One-page files per partition with per-partition content: file f of
/// partition p holds {p * 1000 + f, 1}.
Status SeedPartitions(Database* db,
                      std::vector<std::unique_ptr<FileStore>>* stores) {
  for (uint32_t p = 0; p < kPartitions; ++p) {
    stores->push_back(std::make_unique<FileStore>(
        db, p, /*base_page=*/0, /*pages_per_file=*/1, /*num_files=*/kPages));
    for (uint32_t f = 0; f < kPages; ++f) {
      LLB_RETURN_IF_ERROR((*stores)[p]->WriteValues(
          f, {static_cast<int64_t>(p) * 1000 + f, 1}));
    }
  }
  LLB_RETURN_IF_ERROR(db->FlushAll());
  return db->Checkpoint();
}

Status WipeStable(Env* env, const std::string& db_name) {
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, Database::StableName(db_name), kPartitions));
  for (PartitionId p = 0; p < kPartitions; ++p) {
    LLB_RETURN_IF_ERROR(stable->WipePartition(p));
  }
  return Status::OK();
}

/// Raw bytes of every stable page, for byte-identity comparison across
/// restore configurations.
Result<std::vector<std::string>> SnapshotStable(Env* env,
                                                const std::string& db_name) {
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, Database::StableName(db_name), kPartitions));
  std::vector<std::string> pages;
  for (PartitionId p = 0; p < kPartitions; ++p) {
    for (uint32_t page = 0; page < kPages; ++page) {
      PageImage image;
      LLB_RETURN_IF_ERROR(stable->ReadPage(PageId{p, page}, &image));
      pages.push_back(image.raw_string());
    }
  }
  return pages;
}

TEST(TransferPlanTest, AddRangeChopsAtBatchPages) {
  TransferPlan plan;
  plan.AddRange(/*partition=*/3, /*from=*/0, /*to=*/10,
                /*page_filter=*/nullptr, /*batch_pages=*/4);
  ASSERT_EQ(plan.runs().size(), 3u);
  EXPECT_EQ(plan.runs()[0].partition, 3u);
  EXPECT_EQ(plan.runs()[0].first_page, 0u);
  EXPECT_EQ(plan.runs()[0].count, 4u);
  EXPECT_EQ(plan.runs()[1].first_page, 4u);
  EXPECT_EQ(plan.runs()[1].count, 4u);
  EXPECT_EQ(plan.runs()[2].first_page, 8u);
  EXPECT_EQ(plan.runs()[2].count, 2u);
  EXPECT_EQ(plan.pages(), 10u);
}

TEST(TransferPlanTest, AddRangeSplitsOnFilterGaps) {
  const std::vector<uint32_t> filter = {1, 2, 3, 7, 8, 9};
  TransferPlan plan;
  plan.AddRange(0, 0, 10, &filter, /*batch_pages=*/8);
  ASSERT_EQ(plan.runs().size(), 2u);
  EXPECT_EQ(plan.runs()[0].first_page, 1u);
  EXPECT_EQ(plan.runs()[0].count, 3u);
  EXPECT_EQ(plan.runs()[1].first_page, 7u);
  EXPECT_EQ(plan.runs()[1].count, 3u);
  EXPECT_EQ(plan.pages(), 6u);
}

TEST(TransferPlanTest, DenseButPatchyFilterDegeneratesToSingletonRuns) {
  // The instant-restore sweep plans around already-restored pages, and
  // the worst case for run coalescing is a dense-but-patchy filter:
  // every other page still missing. No two accepted positions are
  // adjacent, so the plan must degenerate to singleton runs — one per
  // accepted page, never a run spanning a restored hole — regardless of
  // how large batch_pages is.
  std::vector<uint32_t> odd_pages;
  for (uint32_t page = 1; page < 64; page += 2) odd_pages.push_back(page);
  TransferPlan plan;
  plan.AddRange(0, 0, 64, &odd_pages, /*batch_pages=*/32);
  ASSERT_EQ(plan.runs().size(), odd_pages.size());
  for (size_t i = 0; i < plan.runs().size(); ++i) {
    EXPECT_EQ(plan.runs()[i].first_page, odd_pages[i]);
    EXPECT_EQ(plan.runs()[i].count, 1u);
  }
  EXPECT_EQ(plan.pages(), odd_pages.size());
}

TEST(TransferPlanTest, PatchyFilterRunsBreakAtEveryGapAndChopAtBatch) {
  // Mixed density: a solid prefix longer than batch_pages, then an
  // every-other-page tail. The prefix chops at the batch boundary (a
  // scheduling split), the tail splits at each gap (a correctness
  // split), and no run bridges the two regimes.
  std::vector<uint32_t> filter;
  for (uint32_t page = 0; page < 12; ++page) filter.push_back(page);
  for (uint32_t page = 13; page < 29; page += 2) filter.push_back(page);
  TransferPlan plan;
  plan.AddRange(0, 0, 29, &filter, /*batch_pages=*/8);
  // Prefix 0..11 -> [0,8) + [8,12); tail -> singletons 13,15,...,27.
  ASSERT_EQ(plan.runs().size(), 2u + 8u);
  EXPECT_EQ(plan.runs()[0].first_page, 0u);
  EXPECT_EQ(plan.runs()[0].count, 8u);
  EXPECT_EQ(plan.runs()[1].first_page, 8u);
  EXPECT_EQ(plan.runs()[1].count, 4u);
  for (size_t i = 2; i < plan.runs().size(); ++i) {
    EXPECT_EQ(plan.runs()[i].first_page, 13u + 2 * (i - 2));
    EXPECT_EQ(plan.runs()[i].count, 1u);
  }
  EXPECT_EQ(plan.pages(), filter.size());
}

TEST(TransferPlanTest, FilterClampsToRangeBounds) {
  // Filter entries outside [from, to) — pages another sweep step owns —
  // must not leak runs into this step's plan.
  const std::vector<uint32_t> filter = {0, 3, 9, 10, 11, 17, 30};
  TransferPlan plan;
  plan.AddRange(0, 8, 16, &filter, /*batch_pages=*/8);
  ASSERT_EQ(plan.runs().size(), 1u);
  EXPECT_EQ(plan.runs()[0].first_page, 9u);
  EXPECT_EQ(plan.runs()[0].count, 3u);
  EXPECT_EQ(plan.pages(), 3u);
}

TEST(TransferPlanTest, AllPagesFilteredOutYieldsEmptyPlan) {
  // A fully-restored region plans to nothing (the sweep's termination
  // case), as does an empty filter list.
  const std::vector<uint32_t> outside = {40, 41, 42};
  const std::vector<uint32_t> empty;
  TransferPlan plan;
  plan.AddRange(0, 0, 32, &outside, /*batch_pages=*/8);
  plan.AddRange(1, 0, 32, &empty, /*batch_pages=*/8);
  EXPECT_TRUE(plan.runs().empty());
  EXPECT_EQ(plan.pages(), 0u);
}

TEST(TransferPlanTest, SeparateAddRangeCallsNeverMergeRuns) {
  // A resumed sweep step re-plans from its durable boundary; its first
  // run must not fuse with the previous call's trailing run even when
  // the positions are contiguous.
  TransferPlan plan;
  plan.AddRange(0, 0, 3, nullptr, /*batch_pages=*/8);
  plan.AddRange(0, 3, 6, nullptr, /*batch_pages=*/8);
  ASSERT_EQ(plan.runs().size(), 2u);
  EXPECT_EQ(plan.runs()[0].count, 3u);
  EXPECT_EQ(plan.runs()[1].first_page, 3u);
  EXPECT_EQ(plan.runs()[1].count, 3u);
}

TEST(TransferPlanTest, AddPagesCoalescesAdjacentIdsWithinPartition) {
  const std::vector<PageId> pages = {
      {0, 4}, {0, 5}, {0, 6}, {0, 9}, {1, 0}, {1, 1}, {2, 7},
  };
  TransferPlan plan;
  plan.AddPages(pages, /*batch_pages=*/2);
  ASSERT_EQ(plan.runs().size(), 5u);
  // {0,4-5} chopped at batch, {0,6}, {0,9}, {1,0-1}, {2,7}.
  EXPECT_EQ(plan.runs()[0].partition, 0u);
  EXPECT_EQ(plan.runs()[0].first_page, 4u);
  EXPECT_EQ(plan.runs()[0].count, 2u);
  EXPECT_EQ(plan.runs()[1].first_page, 6u);
  EXPECT_EQ(plan.runs()[1].count, 1u);
  EXPECT_EQ(plan.runs()[2].first_page, 9u);
  EXPECT_EQ(plan.runs()[3].partition, 1u);
  EXPECT_EQ(plan.runs()[3].count, 2u);
  EXPECT_EQ(plan.runs()[4].partition, 2u);
  EXPECT_EQ(plan.pages(), 7u);
}

TEST(RestoreTransferTest, BatchedAndParallelRestoresAreByteIdentical) {
  DbOptions options = RestoreDb();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  std::vector<std::unique_ptr<FileStore>> stores;
  ASSERT_OK(SeedPartitions(engine->db(), &stores));
  ASSERT_OK(engine->db()->TakeBackup("full").status());

  // Scattered deltas across every partition, then an incremental.
  std::mt19937_64 rng(17);
  for (int i = 0; i < 40; ++i) {
    uint32_t p = static_cast<uint32_t>(rng() % kPartitions);
    uint32_t f = static_cast<uint32_t>(rng() % kPages);
    ASSERT_OK(stores[p]->WriteValues(
        f, {static_cast<int64_t>(p) * 1000 + f, 2, static_cast<int64_t>(i)}));
  }
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeIncrementalBackup("inc", "full").status());

  // Post-backup tail the roll-forward must replay.
  for (int i = 0; i < 20; ++i) {
    uint32_t p = static_cast<uint32_t>(rng() % kPartitions);
    uint32_t f = static_cast<uint32_t>(rng() % kPages);
    ASSERT_OK(stores[p]->WriteValues(
        f, {static_cast<int64_t>(p) * 1000 + f, 3}));
  }
  ASSERT_OK(engine->db()->ForceLog());
  stores.clear();
  ASSERT_OK(engine->Shutdown());

  OpRegistry registry;
  RegisterAllOps(&registry);

  struct Config {
    const char* tag;
    uint32_t batch_pages;
    bool pipelined;
    uint32_t threads;
  };
  const Config kConfigs[] = {
      {"serial per-page", 1, false, 1},
      {"batched", 32, false, 1},
      {"batched pipelined", 8, true, 1},
      {"parallel t2", 8, true, 2},
      {"parallel t4", 32, false, 4},
      {"parallel t8", 8, true, 8},
  };
  std::vector<std::string> reference;
  for (const Config& config : kConfigs) {
    ASSERT_OK(WipeStable(engine->env(), "db"));
    RestoreOptions restore;
    restore.batch_pages = config.batch_pages;
    restore.pipelined = config.pipelined;
    restore.threads = config.threads;
    ASSERT_OK_AND_ASSIGN(
        MediaRecoveryReport report,
        RestoreFromBackupWithOptions(engine->env(),
                                     Database::StableName("db"),
                                     Database::LogName("db"), "inc", registry,
                                     restore));
    EXPECT_EQ(report.backups_applied, 2u) << config.tag;
    // Coalesced apply: every position lands exactly once.
    EXPECT_EQ(report.pages_restored, uint64_t{kPartitions} * kPages)
        << config.tag;
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> snapshot,
                         SnapshotStable(engine->env(), "db"));
    if (reference.empty()) {
      reference = std::move(snapshot);
    } else {
      EXPECT_EQ(snapshot, reference)
          << config.tag << " restore differs from the serial restore";
    }
  }

  // The (shared) restored state is the full-log oracle's.
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<LogManager> log,
        LogManager::Open(engine->env(), Database::LogName("db")));
    std::unique_ptr<PageStore> oracle;
    ASSERT_OK(testutil::BuildOracle(engine->env(), *log, registry,
                                    "oracle_bi", kPartitions, &oracle));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"),
                        kPartitions));
    EXPECT_EQ(testutil::DiffStores(*stable, *oracle, kPartitions, kPages),
              "");
  }

  // And the database reopens over it.
  ASSERT_OK(engine->Reopen());
  FileStore check(engine->db(), 1, 0, 1, kPages);
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> values, check.ReadValues(3));
  ASSERT_FALSE(values.empty());
  EXPECT_EQ(values[0], 1003);
}

TEST(RestoreTransferTest, ChainCoalescingMatchesNaiveApply) {
  // Randomized delta chains: three incrementals with overlapping page
  // sets, quiesced during each backup, nothing after the last one. At
  // stop_at_lsn = the newest manifest's end LSN the copy phase alone
  // determines S, so the coalesced (newest-wins, each page once) apply
  // must byte-match a naive in-order apply of every chain member — while
  // writing only kPartitions * kPages pages instead of the chain total.
  for (uint64_t seed : {11u, 29u}) {
    DbOptions options = RestoreDb();
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                         TestEngine::Create(options));
    std::vector<std::unique_ptr<FileStore>> stores;
    ASSERT_OK(SeedPartitions(engine->db(), &stores));
    ASSERT_OK(engine->db()->TakeBackup("bk0").status());

    std::mt19937_64 rng(seed);
    std::vector<std::string> chain_names = {"bk0"};
    uint64_t naive_writes = uint64_t{kPartitions} * kPages;
    for (int link = 1; link <= 3; ++link) {
      // Files 0..5 of partition 0 change every round (guaranteed
      // supersession) plus a random scatter.
      for (uint32_t f = 0; f < 6; ++f) {
        ASSERT_OK(stores[0]->WriteValues(f, {link, static_cast<int64_t>(f)}));
      }
      for (int i = 0; i < 15; ++i) {
        uint32_t p = static_cast<uint32_t>(rng() % kPartitions);
        uint32_t f = static_cast<uint32_t>(rng() % kPages);
        ASSERT_OK(stores[p]->WriteValues(f, {link, p, f}));
      }
      ASSERT_OK(engine->db()->FlushAll());
      std::string name = "bk" + std::to_string(link);
      ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                           engine->db()->TakeIncrementalBackup(
                               name, chain_names.back()));
      naive_writes += manifest.pages.size();
      chain_names.push_back(name);
    }
    ASSERT_OK(engine->db()->ForceLog());
    stores.clear();
    ASSERT_OK(engine->Shutdown());

    // Naive apply: every chain member in order, page at a time, older
    // copies overwritten by newer ones.
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> naive,
        PageStore::Open(engine->env(), "naive_apply", kPartitions));
    Lsn stop_at = kInvalidLsn;
    for (const std::string& name : chain_names) {
      ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                           BackupManifest::Load(engine->env(), name));
      ASSERT_OK_AND_ASSIGN(
          std::unique_ptr<PageStore> source,
          PageStore::Open(engine->env(), manifest.StoreName(), kPartitions));
      std::vector<PageId> ids = manifest.pages;
      if (!manifest.incremental) {
        for (PartitionId p = 0; p < kPartitions; ++p) {
          for (uint32_t page = 0; page < kPages; ++page) {
            ids.push_back(PageId{p, page});
          }
        }
      }
      for (const PageId& id : ids) {
        PageImage image;
        ASSERT_OK(source->ReadPage(id, &image));
        ASSERT_OK(naive->WritePage(id, image));
      }
      stop_at = manifest.end_lsn;
    }
    ASSERT_GT(naive_writes, uint64_t{kPartitions} * kPages);

    ASSERT_OK(WipeStable(engine->env(), "db"));
    OpRegistry registry;
    RegisterAllOps(&registry);
    RestoreOptions restore;
    restore.batch_pages = 8;
    restore.pipelined = true;
    restore.threads = 2;
    restore.stop_at_lsn = stop_at;
    ASSERT_OK_AND_ASSIGN(
        MediaRecoveryReport report,
        RestoreFromBackupWithOptions(engine->env(),
                                     Database::StableName("db"),
                                     Database::LogName("db"),
                                     chain_names.back(), registry, restore));
    EXPECT_EQ(report.backups_applied, 4u);
    // The coalesced apply wrote each position once; the naive apply
    // re-wrote every superseded delta page.
    EXPECT_EQ(report.pages_restored, uint64_t{kPartitions} * kPages);

    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"),
                        kPartitions));
    EXPECT_EQ(testutil::DiffStores(*stable, *naive, kPartitions, kPages), "")
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace llb
