#include <gtest/gtest.h>

#include <memory>

#include "btree/btree.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions TwoPartitionDb() {
  DbOptions options;
  options.partitions = 2;
  options.pages_per_partition = 512;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.backup_steps = 4;
  return options;
}

TEST(RedoRangeTest, EndLsnStopsRollForward) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TwoPartitionDb()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int64_t k = 0; k < 50; ++k) ASSERT_OK(tree.Insert(k, Slice("early")));
  ASSERT_OK(engine->db()->ForceLog());
  Lsn cut = engine->db()->log()->durable_lsn();
  for (int64_t k = 50; k < 100; ++k) ASSERT_OK(tree.Insert(k, Slice("late")));
  ASSERT_OK(engine->db()->ForceLog());

  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> early,
                       PageStore::Open(engine->env(), "early", 2));
  ASSERT_OK(RunRedoRange(*engine->db()->log(), registry, early.get(), 1, cut,
                         nullptr)
                .status());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> full,
                       PageStore::Open(engine->env(), "full", 2));
  ASSERT_OK(RunRedo(*engine->db()->log(), registry, full.get(), 1).status());

  // The early image must differ from the full image (late inserts
  // missing) but agree with a replay cut at the same point.
  EXPECT_NE(testutil::DiffStores(*early, *full, 2, 512), "");
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> early2,
                       PageStore::Open(engine->env(), "early2", 2));
  ASSERT_OK(RunRedoRange(*engine->db()->log(), registry, early2.get(), 1, cut,
                         nullptr)
                .status());
  EXPECT_EQ(testutil::DiffStores(*early, *early2, 2, 512), "");
}

TEST(RedoRangeTest, PartitionFilterReplaysOnlyThatPartition) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TwoPartitionDb()));
  BTree tree_a(engine->db(), 0, 0, SplitLogging::kLogical);
  BTree tree_b(engine->db(), 1, 0, SplitLogging::kLogical);
  ASSERT_OK(tree_a.Create());
  ASSERT_OK(tree_b.Create());
  for (int64_t k = 0; k < 80; ++k) {
    ASSERT_OK(tree_a.Insert(k, Slice("a")));
    ASSERT_OK(tree_b.Insert(k, Slice("b")));
  }
  ASSERT_OK(engine->db()->ForceLog());

  OpRegistry registry;
  RegisterAllOps(&registry);
  PartitionId only = 1;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> partial,
                       PageStore::Open(engine->env(), "partial", 2));
  ASSERT_OK(RunRedoRange(*engine->db()->log(), registry, partial.get(), 1,
                         kInvalidLsn, &only)
                .status());
  // Partition 0 untouched (all zero), partition 1 populated.
  PageImage page;
  ASSERT_OK(partial->ReadPage(PageId{0, 1}, &page));
  EXPECT_TRUE(page.IsZero());
  ASSERT_OK(partial->ReadPage(PageId{1, 1}, &page));
  EXPECT_FALSE(page.IsZero());
}

TEST(PartitionRestoreTest, SingleFailedPartitionRestoredInPlace) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TwoPartitionDb()));
  BTree tree_a(engine->db(), 0, 0, SplitLogging::kLogical);
  BTree tree_b(engine->db(), 1, 0, SplitLogging::kLogical);
  ASSERT_OK(tree_a.Create());
  ASSERT_OK(tree_b.Create());
  for (int64_t k = 0; k < 150; ++k) {
    ASSERT_OK(tree_a.Insert(k, Slice("a")));
    ASSERT_OK(tree_b.Insert(k, Slice("b")));
  }
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("bk").status());
  for (int64_t k = 150; k < 220; ++k) {
    ASSERT_OK(tree_a.Insert(k, Slice("a2")));
    ASSERT_OK(tree_b.Insert(k, Slice("b2")));
  }
  ASSERT_OK(engine->db()->FlushAll());

  // Partition 1's medium fails; partition 0 stays intact.
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 2));
    ASSERT_OK(stable->WipePartition(1));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions restore;
  restore.partition_only = true;
  restore.partition = 1;
  ASSERT_OK_AND_ASSIGN(
      MediaRecoveryReport report,
      RestoreFromBackupWithOptions(engine->env(), Database::StableName("db"),
                                   Database::LogName("db"), "bk", registry,
                                   restore));
  EXPECT_EQ(report.pages_restored, 512u);  // one partition's pages only

  // The whole database must now equal the oracle.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<LogManager> log,
      LogManager::Open(engine->env(), Database::LogName("db")));
  std::unique_ptr<PageStore> oracle;
  ASSERT_OK(testutil::BuildOracle(engine->env(), *log, registry, "oracle", 2,
                                  &oracle));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(engine->env(), Database::StableName("db"), 2));
  EXPECT_EQ(testutil::DiffStores(*stable, *oracle, 2, 512), "");

  ASSERT_OK(engine->Reopen());
  BTree check_b(engine->db(), 1, 0, SplitLogging::kLogical);
  for (int64_t k = 0; k < 220; ++k) ASSERT_OK(check_b.Get(k).status());
}

TEST(PartitionRestoreTest, OutOfRangePartitionRejected) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TwoPartitionDb()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("bk").status());
  ASSERT_OK(engine->Shutdown());
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions restore;
  restore.partition_only = true;
  restore.partition = 9;
  EXPECT_FALSE(RestoreFromBackupWithOptions(
                   engine->env(), Database::StableName("db"),
                   Database::LogName("db"), "bk", registry, restore)
                   .ok());
}

TEST(PointInTimeTest, RestoreStopsAtRequestedLsn) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TwoPartitionDb()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int64_t k = 0; k < 100; ++k) ASSERT_OK(tree.Insert(k, Slice("pre")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine->db()->TakeBackup("bk"));

  for (int64_t k = 100; k < 140; ++k) {
    ASSERT_OK(tree.Insert(k, Slice("kept")));
  }
  ASSERT_OK(engine->db()->ForceLog());
  Lsn cut = engine->db()->log()->durable_lsn();
  // "Corrupting" activity we want to exclude (paper 6.3: recover "a state
  // that excludes the effects of the corrupting application").
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_OK(tree.Insert(k, Slice("CORRUPTED")));
  }
  ASSERT_OK(engine->db()->ForceLog());

  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 2));
    ASSERT_OK(stable->WipePartition(0));
    ASSERT_OK(stable->WipePartition(1));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions restore;
  restore.stop_at_lsn = cut;
  ASSERT_OK(RestoreFromBackupWithOptions(engine->env(),
                                         Database::StableName("db"),
                                         Database::LogName("db"), "bk",
                                         registry, restore)
                .status());

  ASSERT_OK(engine->Reopen());
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK_AND_ASSIGN(std::string v0, recovered.Get(0));
  EXPECT_EQ(v0, "pre");  // corruption excluded
  ASSERT_OK_AND_ASSIGN(std::string v120, recovered.Get(120));
  EXPECT_EQ(v120, "kept");
  EXPECT_GT(cut, manifest.end_lsn);
}

TEST(PointInTimeTest, TargetBeforeBackupEndRejected) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TwoPartitionDb()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int64_t k = 0; k < 100; ++k) ASSERT_OK(tree.Insert(k, Slice("v")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine->db()->TakeBackup("bk"));
  ASSERT_OK(engine->Shutdown());

  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions restore;
  restore.stop_at_lsn = manifest.end_lsn / 2;
  Status s = RestoreFromBackupWithOptions(
                 engine->env(), Database::StableName("db"),
                 Database::LogName("db"), "bk", registry, restore)
                 .status();
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace llb
