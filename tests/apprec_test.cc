#include <gtest/gtest.h>

#include <memory>

#include "apprec/app_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions AppDbOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 256;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  return options;
}

class AppRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = TestEngine::Create(AppDbOptions());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    // Messages low, applications last (paper 6.2 layout).
    apps_ = std::make_unique<AppRecovery>(engine_->db(), 0, /*msg_base=*/0,
                                          /*num_msgs=*/128, /*app_base=*/240,
                                          /*num_apps=*/8);
  }

  std::unique_ptr<TestEngine> engine_;
  std::unique_ptr<AppRecovery> apps_;
};

TEST_F(AppRecoveryTest, InitAndDigest) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK_AND_ASSIGN(uint64_t digest, apps_->AppDigest(0));
  EXPECT_EQ(digest, 1u);
  ASSERT_OK_AND_ASSIGN(uint64_t count, apps_->AppOpCount(0));
  EXPECT_EQ(count, 0u);
}

TEST_F(AppRecoveryTest, ExecAdvancesState) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK_AND_ASSIGN(uint64_t before, apps_->AppDigest(0));
  ASSERT_OK(apps_->Exec(0, 42));
  ASSERT_OK_AND_ASSIGN(uint64_t after, apps_->AppDigest(0));
  EXPECT_NE(before, after);
  ASSERT_OK_AND_ASSIGN(uint64_t count, apps_->AppOpCount(0));
  EXPECT_EQ(count, 1u);
}

TEST_F(AppRecoveryTest, ExecIsDeterministic) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK(apps_->InitApp(1));
  // Same digest seeds make same transitions... app ids differ, so align:
  ASSERT_OK(apps_->Exec(0, 7));
  ASSERT_OK(apps_->Exec(0, 8));
  // Replaying identical history on a second engine yields same digest.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> other,
                       TestEngine::Create(AppDbOptions()));
  AppRecovery apps2(other->db(), 0, 0, 128, 240, 8);
  ASSERT_OK(apps2.InitApp(0));
  ASSERT_OK(apps2.Exec(0, 7));
  ASSERT_OK(apps2.Exec(0, 8));
  ASSERT_OK_AND_ASSIGN(uint64_t a, apps_->AppDigest(0));
  ASSERT_OK_AND_ASSIGN(uint64_t b, apps2.AppDigest(0));
  EXPECT_EQ(a, b);
}

TEST_F(AppRecoveryTest, ReadConsumesMessageContents) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK(apps_->WriteMessage(3, 1234));
  ASSERT_OK_AND_ASSIGN(uint64_t before, apps_->AppDigest(0));
  ASSERT_OK(apps_->Read(0, 3));
  ASSERT_OK_AND_ASSIGN(uint64_t after, apps_->AppDigest(0));
  EXPECT_NE(before, after);
}

TEST_F(AppRecoveryTest, ReadDependsOnMessageValue) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK(apps_->InitApp(1));
  ASSERT_OK(apps_->WriteMessage(0, 111));
  ASSERT_OK(apps_->WriteMessage(1, 222));
  // Same starting digests would be needed for a strict comparison; use
  // two messages against one app in sequence and confirm the order makes
  // the digest differ from the swapped order on a twin engine.
  ASSERT_OK(apps_->Read(0, 0));
  ASSERT_OK(apps_->Read(0, 1));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> other,
                       TestEngine::Create(AppDbOptions()));
  AppRecovery apps2(other->db(), 0, 0, 128, 240, 8);
  ASSERT_OK(apps2.InitApp(0));
  ASSERT_OK(apps2.WriteMessage(0, 111));
  ASSERT_OK(apps2.WriteMessage(1, 222));
  ASSERT_OK(apps2.Read(0, 1));
  ASSERT_OK(apps2.Read(0, 0));
  ASSERT_OK_AND_ASSIGN(uint64_t a, apps_->AppDigest(0));
  ASSERT_OK_AND_ASSIGN(uint64_t b, apps2.AppDigest(0));
  EXPECT_NE(a, b);
}

TEST_F(AppRecoveryTest, WriteEmitsDeterministicMessage) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK(apps_->Exec(0, 5));
  ASSERT_OK(apps_->Write(0, 7));
  PageImage msg;
  ASSERT_OK(engine_->db()->ReadPage(apps_->MsgPage(7), &msg));
  EXPECT_FALSE(msg.IsZero());
}

TEST_F(AppRecoveryTest, HistorySurvivesCrashWithoutFlush) {
  ASSERT_OK(apps_->InitApp(0));
  ASSERT_OK(apps_->WriteMessage(2, 99));
  ASSERT_OK(apps_->Read(0, 2));
  ASSERT_OK(apps_->Exec(0, 13));
  ASSERT_OK_AND_ASSIGN(uint64_t digest, apps_->AppDigest(0));
  ASSERT_OK(engine_->db()->ForceLog());
  ASSERT_OK(engine_->CrashAndRecover());
  AppRecovery reopened(engine_->db(), 0, 0, 128, 240, 8);
  ASSERT_OK_AND_ASSIGN(uint64_t recovered, reopened.AppDigest(0));
  EXPECT_EQ(recovered, digest);
  ASSERT_OK_AND_ASSIGN(uint64_t count, reopened.AppOpCount(0));
  EXPECT_EQ(count, 2u);
}

TEST_F(AppRecoveryTest, BadIdsRejected) {
  EXPECT_FALSE(apps_->InitApp(99).ok());
  EXPECT_FALSE(apps_->Exec(99, 1).ok());
  EXPECT_FALSE(apps_->Read(0, 9999).ok());
  EXPECT_FALSE(apps_->Write(0, 9999).ok());
}

}  // namespace
}  // namespace llb
