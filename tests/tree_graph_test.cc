#include <gtest/gtest.h>

#include <vector>

#include "recovery/tree_write_graph.h"
#include "tests/test_util.h"

namespace llb {
namespace {

PageId P(uint32_t page) { return PageId{0, page}; }

LogRecord PageOp(Lsn lsn, uint32_t page) {
  LogRecord rec;
  rec.lsn = lsn;
  rec.op_code = kOpBtreeInsert;
  rec.readset = {P(page)};
  rec.writeset = {P(page)};
  return rec;
}

/// W_L(old, new): reads `old`, writes the fresh page `new`.
LogRecord WriteNew(Lsn lsn, uint32_t old_page, uint32_t new_page) {
  LogRecord rec;
  rec.lsn = lsn;
  rec.op_code = kOpBtreeMovRec;
  rec.readset = {P(old_page)};
  rec.writeset = {P(new_page)};
  return rec;
}

TEST(TreeGraphTest, PageOrientedOpsHaveNoConstraints) {
  TreeWriteGraph graph;
  graph.OnOperation(PageOp(1, 5));
  graph.OnOperation(PageOp(2, 6));
  EXPECT_FALSE(graph.HasSuccessors(P(5)));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(5), &plan));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_FALSE(plan[0].has_successors);
}

TEST(TreeGraphTest, WriteNewRecordsSuccessor) {
  TreeWriteGraph graph;
  // The dagger property holds when the successor's position is BELOW the
  // new object's (#y < #X): X is then swept no earlier than y (paper 4.2,
  // "This is so when #y < #X"). Here #new(9) > #old(3): no violation.
  graph.OnOperation(WriteNew(1, /*old=*/3, /*new=*/9));
  EXPECT_TRUE(graph.HasSuccessors(P(9)));
  EXPECT_EQ(graph.MaxSuccessorPos(P(9)), 3u);
  EXPECT_FALSE(graph.Violation(P(9)));
}

TEST(TreeGraphTest, ViolationWhenNewBelowOld) {
  TreeWriteGraph graph;
  // #new(3) < #old(9): the sweep passes X before its successor, so the
  // dagger property fails — violation(X) set.
  graph.OnOperation(WriteNew(1, /*old=*/9, /*new=*/3));
  EXPECT_TRUE(graph.Violation(P(3)));
}

TEST(TreeGraphTest, MaxPosIsTransitive) {
  TreeWriteGraph graph;
  // 2 <- reads 50 (dirty via write-new from 50? build chain):
  // W_L(50, 4): S(4) = {50}; then W_L(4, 2): S(2) = {4} u S(4).
  graph.OnOperation(WriteNew(1, 50, 4));
  graph.OnOperation(WriteNew(2, 4, 2));
  EXPECT_EQ(graph.MaxSuccessorPos(P(2)), 50u);
}

TEST(TreeGraphTest, ViolationPropagatesToNewPredecessors) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, /*old=*/9, /*new=*/3));  // violation on 3
  ASSERT_TRUE(graph.Violation(P(3)));
  // #new(7) > #old(3) would be fine alone, but violation(3) propagates
  // ("any subsequently added predecessors of X also have an order
  // violation", paper 4.2).
  graph.OnOperation(WriteNew(2, /*old=*/3, /*new=*/7));
  EXPECT_TRUE(graph.Violation(P(7)));
}

TEST(TreeGraphTest, OldUpdateBindsPredecessorEdge) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, /*old=*/9, /*new=*/3));
  EXPECT_FALSE(graph.MustInstallBefore(P(3), P(9)));  // old not dirty yet
  graph.OnOperation(PageOp(2, 9));  // RmvRec-like update of old
  EXPECT_TRUE(graph.MustInstallBefore(P(3), P(9)));
}

TEST(TreeGraphTest, PlanInstallsNewBeforeOld) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, 9, 3));
  graph.OnOperation(PageOp(2, 9));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(9), &plan));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].vars, std::vector<PageId>{P(3)});
  EXPECT_EQ(plan[1].vars, std::vector<PageId>{P(9)});
}

TEST(TreeGraphTest, PlanChainOfSplits) {
  TreeWriteGraph graph;
  // Split cascade: 9 -> 3 -> 1 (each new from the previous new).
  graph.OnOperation(WriteNew(1, 9, 3));
  graph.OnOperation(PageOp(2, 9));
  graph.OnOperation(WriteNew(3, 3, 1));
  graph.OnOperation(PageOp(4, 3));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(9), &plan));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].vars, std::vector<PageId>{P(1)});
  EXPECT_EQ(plan[1].vars, std::vector<PageId>{P(3)});
  EXPECT_EQ(plan[2].vars, std::vector<PageId>{P(9)});
}

TEST(TreeGraphTest, OneOldCanSpawnMultipleNews) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, 9, 3));
  graph.OnOperation(WriteNew(2, 9, 4));
  graph.OnOperation(PageOp(3, 9));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(9), &plan));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.back().vars, std::vector<PageId>{P(9)});
}

TEST(TreeGraphTest, InstallReleasesWatch) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, 9, 3));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(3), &plan));
  graph.MarkInstalled(plan[0].node_id);
  EXPECT_FALSE(graph.IsTracked(P(3)));
  // Updating old after new installed: no predecessor edge.
  graph.OnOperation(PageOp(2, 9));
  std::vector<InstallUnit> plan2;
  ASSERT_OK(graph.PlanInstall(P(9), &plan2));
  EXPECT_EQ(plan2.size(), 1u);
}

TEST(TreeGraphTest, SuccessorsFixedAtFirstUpdate) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, 9, 3));
  // Later page-oriented ops on 3 do not add successors.
  graph.OnOperation(PageOp(2, 3));
  EXPECT_EQ(graph.MaxSuccessorPos(P(3)), 9u);
}

TEST(TreeGraphTest, ReinstalledPageStartsFresh) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, 9, 3));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(3), &plan));
  graph.MarkInstalled(plan[0].node_id);
  graph.OnOperation(PageOp(2, 3));
  EXPECT_FALSE(graph.HasSuccessors(P(3)));
  EXPECT_FALSE(graph.Violation(P(3)));
}

TEST(TreeGraphTest, RedoStartLsn) {
  TreeWriteGraph graph;
  EXPECT_EQ(graph.RedoStartLsn(42), 42u);
  graph.OnOperation(PageOp(5, 1));
  graph.OnOperation(PageOp(7, 2));
  EXPECT_EQ(graph.RedoStartLsn(42), 5u);
}

TEST(TreeGraphTest, StatsCountEdgesAndNodes) {
  TreeWriteGraph graph;
  graph.OnOperation(WriteNew(1, 9, 3));
  graph.OnOperation(PageOp(2, 9));
  WriteGraphStats stats = graph.GetStats();
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(stats.edges, 1u);
  EXPECT_EQ(stats.max_vars, 1u);  // tree nodes never need atomic batches
}

TEST(TreeGraphTest, AppReadShapedOpMakesReadPageASuccessor) {
  TreeWriteGraph graph;
  // R(X=2, A=9): reads X and A, writes A. X becomes a successor of A.
  LogRecord rec;
  rec.lsn = 1;
  rec.op_code = kOpAppRead;
  rec.readset = {P(2), P(9)};
  rec.writeset = {P(9)};
  graph.OnOperation(rec);
  EXPECT_TRUE(graph.HasSuccessors(P(9)));
  EXPECT_EQ(graph.MaxSuccessorPos(P(9)), 2u);
  EXPECT_FALSE(graph.Violation(P(9)));  // app (9) above message (2)
}

}  // namespace
}  // namespace llb
