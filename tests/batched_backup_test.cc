#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "filestore/filestore.h"
#include "sim/oracle.h"
#include "tests/test_util.h"
#include "torture/torture_util.h"

namespace llb {
namespace {

/// Deterministic coverage of the batched/pipelined sweep path
/// (BackupJobOptions::batch_pages / pipelined): the fence protocol must be
/// invisible to batching. Fences move only at step boundaries, so a flush
/// that lands while a step's batch is in flight — pending fence advanced
/// over it, batched runs not yet durable in B — must classify exactly as
/// it would under the legacy per-page sweep.

constexpr uint32_t kPages = 32;
constexpr uint32_t kSteps = 4;

DbOptions BatchedOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 16;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  return options;
}

/// One-page files over a freshly opened engine: file i is page i.
Status SeedFiles(Database* db, FileStore* files) {
  for (uint32_t f = 0; f < kPages; ++f) {
    LLB_RETURN_IF_ERROR(files->WriteValues(f, {static_cast<int64_t>(f), 1}));
  }
  LLB_RETURN_IF_ERROR(db->FlushAll());
  return db->Checkpoint();
}

/// Mirrors FenceProtocolTest.MidStepFlushPerRegionTakesExactPath, but the
/// sweep moves whole steps as single batched runs (batch_pages covers the
/// 8-page step) with double-buffered prefetch on. The mid-step hook fires
/// while step 2's batch is in flight: P has been advanced to 16, the
/// batch's pages sit in Doubt, and nothing of the step has reached B yet.
/// Done/Doubt/Pend classification must be identical to the per-page sweep:
/// Done and Doubt flushes take the identity-write path and are logged,
/// Pend flushes are not.
TEST(BatchedBackupTest, MidBatchFlushClassificationUnchanged) {
  for (bool pipelined : {false, true}) {
    SCOPED_TRACE(pipelined ? "pipelined" : "serial");
    TortureEngine engine(BatchedOptions());
    ASSERT_OK(engine.Open());
    Database* db = engine.db.get();
    FileStore files(db, /*partition=*/0, /*base_page=*/0,
                    /*pages_per_file=*/1, /*num_files=*/kPages);
    ASSERT_OK(SeedFiles(db, &files));

    auto flush_file = [&](uint32_t f) -> Status {
      LLB_RETURN_IF_ERROR(files.WriteValues(f, {static_cast<int64_t>(f), 2}));
      return db->FlushPage(files.PagesOf(f)[0]);
    };
    bool checked = false;
    BackupJobOptions job;
    job.steps = kSteps;
    job.batch_pages = 16;  // one batched run spans the whole 8-page step
    job.pipelined = pipelined;
    job.mid_step = [&](PartitionId, uint32_t step) -> Status {
      if (step != 2) return Status::OK();
      checked = true;
      // Regions during step 2: Done = [0, 8), Doubt = [8, 16),
      // Pend = [16, 32) — exactly as with batch_pages = 1.
      CacheStats before = db->cache()->stats();
      LLB_RETURN_IF_ERROR(flush_file(2));  // Done
      CacheStats after_done = db->cache()->stats();
      EXPECT_EQ(after_done.region_done, before.region_done + 1);
      EXPECT_EQ(after_done.identity_writes, before.identity_writes + 1);
      EXPECT_EQ(after_done.decisions_logged, before.decisions_logged + 1);

      LLB_RETURN_IF_ERROR(flush_file(10));  // Doubt: inside the in-flight batch
      CacheStats after_doubt = db->cache()->stats();
      EXPECT_EQ(after_doubt.region_doubt, after_done.region_doubt + 1);
      EXPECT_EQ(after_doubt.identity_writes, after_done.identity_writes + 1);
      EXPECT_EQ(after_doubt.decisions_logged, after_done.decisions_logged + 1);

      LLB_RETURN_IF_ERROR(flush_file(20));  // Pend: ahead of every batch
      CacheStats after_pend = db->cache()->stats();
      EXPECT_EQ(after_pend.region_pend, after_doubt.region_pend + 1);
      EXPECT_EQ(after_pend.identity_writes, after_doubt.identity_writes);
      EXPECT_EQ(after_pend.decisions_logged, after_doubt.decisions_logged);
      return Status::OK();
    };
    BackupJobStats stats;
    ASSERT_OK_AND_ASSIGN(
        BackupManifest manifest,
        db->TakeBackupWithOptions("fence_bk", job, &stats));
    EXPECT_TRUE(manifest.complete);
    EXPECT_TRUE(checked);
    // The sweep really took the batched path: one run per step.
    EXPECT_EQ(stats.read_batches, kSteps);
    EXPECT_EQ(stats.write_batches, kSteps);
    EXPECT_EQ(stats.pages_copied, kPages);

    // The mid-batch flushes were identity-logged, so the chain restores.
    ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("fence_bk"));
    EXPECT_TRUE(verify.clean());
    ASSERT_OK(torture::VerifyOpenDb(&engine));
    engine.Shutdown();
    ASSERT_OK(torture::WipeStable(&engine));
    ASSERT_OK(torture::OfflineRestore(&engine, "fence_bk", kInvalidLsn));
    ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
  }
}

/// Batching is a pure IO-shape change: with no concurrent updates, a
/// batched sweep must produce a backup store logically identical to the
/// legacy per-page sweep's, and the same fence-update count.
TEST(BatchedBackupTest, BatchedSweepMatchesLegacyOutput) {
  TortureEngine engine(BatchedOptions());
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  FileStore files(db, 0, 0, 1, kPages);
  ASSERT_OK(SeedFiles(db, &files));

  BackupJobOptions legacy;
  legacy.steps = kSteps;  // batch_pages = 1: per-page sweep
  BackupJobStats legacy_stats;
  ASSERT_OK_AND_ASSIGN(BackupManifest legacy_manifest,
                       db->TakeBackupWithOptions("bk_k1", legacy,
                                                 &legacy_stats));
  EXPECT_TRUE(legacy_manifest.complete);
  EXPECT_EQ(legacy_stats.read_batches, 0u);
  EXPECT_EQ(legacy_stats.write_batches, 0u);

  BackupJobOptions batched;
  batched.steps = kSteps;
  batched.batch_pages = 16;
  batched.pipelined = true;
  BackupJobStats batched_stats;
  ASSERT_OK_AND_ASSIGN(BackupManifest batched_manifest,
                       db->TakeBackupWithOptions("bk_k16", batched,
                                                 &batched_stats));
  EXPECT_TRUE(batched_manifest.complete);
  EXPECT_GT(batched_stats.read_batches, 0u);
  EXPECT_GT(batched_stats.write_batches, 0u);

  // Identical page traffic and identical fence walk for every K.
  EXPECT_EQ(batched_stats.pages_copied, legacy_stats.pages_copied);
  EXPECT_EQ(batched_stats.fence_updates, legacy_stats.fence_updates);

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> store_k1,
      PageStore::Open(&engine.env, legacy_manifest.StoreName(), 1));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> store_k16,
      PageStore::Open(&engine.env, batched_manifest.StoreName(), 1));
  EXPECT_EQ(testutil::DiffStores(*store_k1, *store_k16, 1, kPages), "");
}

/// A scripted transient fault kills the second step's first batched write,
/// leaving the durable cursor at the step-1 boundary mid-sweep. Resume
/// must skip exactly the durably-copied prefix, re-sweep the rest in
/// batches, and the finished chain must absorb updates made while the
/// fences stayed up between abort and resume.
TEST(BatchedBackupTest, ResumeRestartsFromMidSweepDurableCursor) {
  TortureEngine engine(BatchedOptions());
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  FileStore files(db, 0, 0, 1, kPages);
  ASSERT_OK(SeedFiles(db, &files));

  BackupJobOptions job;
  job.steps = kSteps;
  job.batch_pages = 4;  // two batched writes per 8-page step
  job.pipelined = true;

  // Batched writes to the backup pages file: step 1 issues two, so the
  // third is step 2's first run — the countdown counts vectored batches,
  // not pages (FaultyFile::WriteAtv decides once per call).
  ScriptedFaultPolicy abort_policy({{FaultOp::kWriteAt, "bk_mid.pages",
                                     /*countdown=*/3, FaultAction::kFail}});
  engine.env.SetPolicy(&abort_policy);
  Result<BackupManifest> aborted = db->TakeBackupWithOptions("bk_mid", job);
  engine.env.SetPolicy(nullptr);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(abort_policy.fired(), 1u);

  // Fences are still up; these flushes into already-copied territory must
  // be identity-logged for the resumed chain to stay recoverable.
  for (uint32_t f = 0; f < 12; ++f) {
    ASSERT_OK(files.WriteValues(f, {static_cast<int64_t>(f), 3}));
  }
  ASSERT_OK(db->FlushAll());

  BackupJobStats stats;
  ASSERT_OK_AND_ASSIGN(BackupManifest resumed,
                       db->ResumeBackup("bk_mid", job, &stats));
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(stats.partitions_resumed, 1u);
  // The cursor was durable at the step-1 boundary (page 8): exactly that
  // prefix is skipped, the remaining 24 pages are re-swept in batches.
  EXPECT_EQ(stats.pages_skipped_on_resume, 8u);
  EXPECT_EQ(stats.pages_copied, kPages - 8u);
  EXPECT_GT(stats.write_batches, 0u);

  ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("bk_mid"));
  EXPECT_TRUE(verify.clean());
  ASSERT_OK(torture::VerifyOpenDb(&engine));
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "bk_mid", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

/// DbOptions plumbing: backup_batch_pages / backup_pipelined reach both
/// TakeBackup and TakeIncrementalBackup. Scattered changed pages break the
/// incremental sweep into many short runs; the chain must still restore.
TEST(BatchedBackupTest, IncrementalRunSplittingOverScatteredPages) {
  DbOptions options = BatchedOptions();
  options.backup_batch_pages = 4;
  options.backup_pipelined = true;
  TortureEngine engine(options);
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  FileStore files(db, 0, 0, 1, kPages);
  ASSERT_OK(SeedFiles(db, &files));

  ASSERT_OK_AND_ASSIGN(BackupManifest full, db->TakeBackup("bk_base", 0));
  EXPECT_TRUE(full.complete);

  // Touch every third page: runs of length 1 with gaps, plus one longer
  // run at the front, so the incremental exercises filter-driven splits.
  for (uint32_t f = 0; f < kPages; f += 3) {
    ASSERT_OK(files.WriteValues(f, {static_cast<int64_t>(f), 4}));
  }
  for (uint32_t f = 0; f < 4; ++f) {
    ASSERT_OK(files.WriteValues(f, {static_cast<int64_t>(f), 5}));
  }
  ASSERT_OK(db->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest incr,
                       db->TakeIncrementalBackup("bk_incr", "bk_base", 0));
  EXPECT_TRUE(incr.complete);

  ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("bk_incr"));
  EXPECT_TRUE(verify.clean());
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "bk_incr", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

}  // namespace
}  // namespace llb
