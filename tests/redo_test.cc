#include <gtest/gtest.h>

#include <memory>

#include "common/coding.h"
#include "filestore/file_ops.h"
#include "io/mem_env.h"
#include "ops/op_registry.h"
#include "ops/operation.h"
#include "recovery/checkpoint.h"
#include "recovery/redo.h"
#include "tests/test_util.h"

namespace llb {
namespace {

PageId P(uint32_t page) { return PageId{0, page}; }

PageImage ValuePage(const std::string& content) {
  PageImage page;
  page.SetPayload(Slice(content));
  page.set_type(PageType::kRaw);
  return page;
}

class RedoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterFileOps(&registry_);
    auto log = LogManager::Open(&env_, "log");
    ASSERT_TRUE(log.ok());
    log_ = std::move(log).value();
    auto store = PageStore::Open(&env_, "stable", 1);
    ASSERT_TRUE(store.ok());
    stable_ = std::move(store).value();
  }

  Lsn Append(LogRecord rec) {
    Lsn lsn = log_->Append(&rec);
    EXPECT_TRUE(log_->Force().ok());
    return lsn;
  }

  std::string PagePrefix(const PageId& id, size_t n) {
    PageImage page;
    EXPECT_TRUE(stable_->ReadPage(id, &page).ok());
    return page.payload().ToString().substr(0, n);
  }

  MemEnv env_;
  OpRegistry registry_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<PageStore> stable_;
};

TEST_F(RedoTest, ReplaysPhysicalWrite) {
  Append(MakePhysicalWrite(P(1), ValuePage("hello")));
  ASSERT_OK_AND_ASSIGN(RedoReport report,
                       RunRedo(*log_, registry_, stable_.get(), 1));
  EXPECT_EQ(report.ops_replayed, 1u);
  EXPECT_EQ(PagePrefix(P(1), 5), "hello");
}

TEST_F(RedoTest, SkipsAlreadyInstalledOps) {
  PageImage v = ValuePage("hello");
  Lsn lsn = Append(MakePhysicalWrite(P(1), v));
  v.set_lsn(lsn);
  ASSERT_OK(stable_->WritePage(P(1), v));  // already flushed
  ASSERT_OK_AND_ASSIGN(RedoReport report,
                       RunRedo(*log_, registry_, stable_.get(), 1));
  EXPECT_EQ(report.ops_replayed, 0u);
}

TEST_F(RedoTest, IsIdempotent) {
  Append(MakePhysicalWrite(P(1), ValuePage("once")));
  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), 1).status());
  ASSERT_OK_AND_ASSIGN(RedoReport second,
                       RunRedo(*log_, registry_, stable_.get(), 1));
  EXPECT_EQ(second.ops_replayed, 0u);
  EXPECT_EQ(second.pages_written, 0u);
}

TEST_F(RedoTest, ReplaysLogicalOpFromReadSet) {
  Append(MakePhysicalWrite(P(1), ValuePage("source")));
  Append(MakeFileCopy({P(1)}, {P(2)}));
  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), 1).status());
  EXPECT_EQ(PagePrefix(P(2), 6), "source");
}

TEST_F(RedoTest, LogicalOpChainReplaysInOrder) {
  Append(MakePhysicalWrite(P(1), ValuePage("abc")));
  Append(MakeFileCopy({P(1)}, {P(2)}));
  Append(MakeFileCopy({P(2)}, {P(3)}));
  Append(MakePhysicalWrite(P(1), ValuePage("xyz")));  // overwrite source
  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), 1).status());
  // The copies must have seen the OLD value of page 1.
  EXPECT_EQ(PagePrefix(P(2), 3), "abc");
  EXPECT_EQ(PagePrefix(P(3), 3), "abc");
  EXPECT_EQ(PagePrefix(P(1), 3), "xyz");
}

TEST_F(RedoTest, PerTargetTestSkipsNewerPages) {
  // Copy writes pages 2 and 3; page 3 was already flushed with the op's
  // LSN, page 2 was not: only page 2 is (re)written.
  Append(MakePhysicalWrite(P(1), ValuePage("v")));
  LogRecord copy = MakeFileCopy({P(1), P(1)}, {P(2), P(3)});
  Lsn lsn = log_->Append(&copy);
  ASSERT_OK(log_->Force());
  PageImage already = ValuePage("already-there");
  already.set_lsn(lsn);
  ASSERT_OK(stable_->WritePage(P(3), already));

  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), 1).status());
  EXPECT_EQ(PagePrefix(P(2), 1), "v");
  EXPECT_EQ(PagePrefix(P(3), 7), "already");  // untouched: LSN said newer
}

TEST_F(RedoTest, IdentityWriteSeedsPage) {
  // An op whose effect exists only on the log via an identity write:
  // install-without-flush. The op itself must NOT be replayed.
  Append(MakePhysicalWrite(P(1), ValuePage("in")));
  LogRecord copy = MakeFileCopy({P(1)}, {P(2)});
  Append(copy);
  // Identity write captures page 2's post-copy value.
  PageImage post;
  post.SetPayload(Slice("in"));
  post.set_type(PageType::kFile);
  Lsn wip_lsn = Append(MakeIdentityWrite(P(2), post));
  // Source page 1 then moves on AND is flushed (installed) — if the copy
  // were replayed it would read the wrong source.
  PageImage newer = ValuePage("overwritten");
  Lsn ow_lsn = Append(MakePhysicalWrite(P(1), newer));
  newer.set_lsn(ow_lsn);
  ASSERT_OK(stable_->WritePage(P(1), newer));

  ASSERT_OK_AND_ASSIGN(RedoReport report,
                       RunRedo(*log_, registry_, stable_.get(), 1));
  EXPECT_GE(report.pages_seeded, 1u);
  EXPECT_EQ(PagePrefix(P(2), 2), "in");  // from the identity value
  PageImage page;
  ASSERT_OK(stable_->ReadPage(P(2), &page));
  EXPECT_EQ(page.lsn(), wip_lsn);
}

TEST_F(RedoTest, LastIdentityValueWins) {
  PageImage v1 = ValuePage("first");
  PageImage v2 = ValuePage("second");
  Append(MakeIdentityWrite(P(5), v1));
  Append(MakeIdentityWrite(P(5), v2));
  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), 1).status());
  EXPECT_EQ(PagePrefix(P(5), 6), "second");
}

TEST_F(RedoTest, OpsAfterSeedApplyOnTop) {
  PageImage v = ValuePage("seeded");
  Append(MakeIdentityWrite(P(1), v));
  Append(MakeFileCopy({P(1)}, {P(2)}));
  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), 1).status());
  EXPECT_EQ(PagePrefix(P(2), 6), "seeded");
}

TEST_F(RedoTest, StartLsnSkipsEarlierRecords) {
  Append(MakePhysicalWrite(P(1), ValuePage("old")));
  Lsn second = Append(MakePhysicalWrite(P(2), ValuePage("new")));
  ASSERT_OK(RunRedo(*log_, registry_, stable_.get(), second).status());
  PageImage page;
  ASSERT_OK(stable_->ReadPage(P(1), &page));
  EXPECT_TRUE(page.IsZero());  // record before start ignored
  EXPECT_EQ(PagePrefix(P(2), 3), "new");
}

TEST_F(RedoTest, CheckpointRecordsAreSkipped) {
  LogRecord ckpt;
  ckpt.op_code = kOpCheckpoint;
  PutFixed64(&ckpt.payload, 1);
  Append(ckpt);
  ASSERT_OK_AND_ASSIGN(RedoReport report,
                       RunRedo(*log_, registry_, stable_.get(), 1));
  EXPECT_EQ(report.ops_replayed, 0u);
}

TEST_F(RedoTest, FindCrashRedoStartUsesLastCheckpoint) {
  ASSERT_OK_AND_ASSIGN(Lsn none, FindCrashRedoStart(*log_));
  EXPECT_EQ(none, 1u);
  LogRecord c1;
  c1.op_code = kOpCheckpoint;
  PutFixed64(&c1.payload, 7);
  Append(c1);
  LogRecord c2;
  c2.op_code = kOpCheckpoint;
  PutFixed64(&c2.payload, 12);
  Append(c2);
  ASSERT_OK_AND_ASSIGN(Lsn start, FindCrashRedoStart(*log_));
  EXPECT_EQ(start, 12u);
}

TEST_F(RedoTest, EmptyLogIsANoOp) {
  ASSERT_OK_AND_ASSIGN(RedoReport report,
                       RunRedo(*log_, registry_, stable_.get(), 1));
  EXPECT_EQ(report.records_scanned, 0u);
  EXPECT_EQ(report.pages_written, 0u);
}

}  // namespace
}  // namespace llb
