#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "recovery/general_write_graph.h"
#include "recovery/write_graph.h"
#include "tests/test_util.h"

namespace llb {
namespace {

PageId P(uint32_t page) { return PageId{0, page}; }

LogRecord Op(Lsn lsn, std::vector<PageId> reads, std::vector<PageId> writes) {
  LogRecord rec;
  rec.lsn = lsn;
  rec.op_code = kOpFileCopy;
  rec.readset = std::move(reads);
  rec.writeset = std::move(writes);
  return rec;
}

size_t IndexOf(const std::vector<InstallUnit>& plan, uint64_t node) {
  for (size_t i = 0; i < plan.size(); ++i) {
    if (plan[i].node_id == node) return i;
  }
  return plan.size();
}

TEST(PageOrientedGraphTest, NoEdgesSingletonNodes) {
  PageOrientedWriteGraph graph;
  graph.OnOperation(Op(1, {P(1)}, {P(1)}));
  graph.OnOperation(Op(2, {P(2)}, {P(2)}));
  EXPECT_TRUE(graph.IsTracked(P(1)));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(1), &plan));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].vars, std::vector<PageId>{P(1)});
  graph.MarkInstalled(plan[0].node_id);
  EXPECT_FALSE(graph.IsTracked(P(1)));
  EXPECT_TRUE(graph.IsTracked(P(2)));
}

TEST(PageOrientedGraphTest, RedoStartIsMinUninstalledLsn) {
  PageOrientedWriteGraph graph;
  EXPECT_EQ(graph.RedoStartLsn(10), 10u);
  graph.OnOperation(Op(3, {P(1)}, {P(1)}));
  graph.OnOperation(Op(5, {P(2)}, {P(2)}));
  EXPECT_EQ(graph.RedoStartLsn(10), 3u);
}

TEST(GeneralGraphTest, IntersectingWritesShareANode) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {}, {P(1), P(2)}));
  graph.OnOperation(Op(2, {}, {P(2), P(3)}));
  EXPECT_EQ(graph.OwnerNode(P(1)), graph.OwnerNode(P(3)));
  EXPECT_EQ(graph.VarsSizeOf(P(1)), 3u);
  EXPECT_EQ(graph.NumNodes(), 1u);
}

TEST(GeneralGraphTest, DisjointWritesSeparateNodes) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {}, {P(1)}));
  graph.OnOperation(Op(2, {}, {P(2)}));
  EXPECT_NE(graph.OwnerNode(P(1)), graph.OwnerNode(P(2)));
  EXPECT_EQ(graph.NumNodes(), 2u);
}

TEST(GeneralGraphTest, ReadWriteConflictCreatesEdge) {
  GeneralWriteGraph graph;
  // O reads X(=1) and writes Y(=2); P later writes X: node(O) -> node(P).
  graph.OnOperation(Op(1, {P(1)}, {P(2)}));
  graph.OnOperation(Op(2, {}, {P(1)}));
  uint64_t o = graph.OwnerNode(P(2));
  uint64_t p = graph.OwnerNode(P(1));
  ASSERT_NE(o, 0u);
  ASSERT_NE(p, 0u);
  EXPECT_TRUE(graph.HasEdge(o, p));
  EXPECT_FALSE(graph.HasEdge(p, o));
}

TEST(GeneralGraphTest, WriteReadConflictIsNotAnEdge) {
  GeneralWriteGraph graph;
  // A writes X; B later reads X (writing elsewhere): no installation
  // edge in either direction (paper 2.2).
  graph.OnOperation(Op(1, {}, {P(1)}));
  graph.OnOperation(Op(2, {P(1)}, {P(2)}));
  uint64_t a = graph.OwnerNode(P(1));
  uint64_t b = graph.OwnerNode(P(2));
  EXPECT_FALSE(graph.HasEdge(a, b));
  EXPECT_FALSE(graph.HasEdge(b, a));
}

TEST(GeneralGraphTest, PlanOrdersPredecessorsFirst) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {P(1)}, {P(2)}));  // node A: reads 1, writes 2
  graph.OnOperation(Op(2, {}, {P(1)}));      // node B: writes 1; A -> B
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(1), &plan));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].vars, std::vector<PageId>{P(2)});  // A first
  EXPECT_EQ(plan[1].vars, std::vector<PageId>{P(1)});
}

TEST(GeneralGraphTest, PlanForNodeWithoutPredsIsSelfOnly) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {P(1)}, {P(2)}));
  graph.OnOperation(Op(2, {}, {P(1)}));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(2), &plan));
  EXPECT_EQ(plan.size(), 1u);
}

TEST(GeneralGraphTest, CycleCollapsesIntoOneNode) {
  GeneralWriteGraph graph;
  // A: reads 1 writes 2.  B: reads 2 writes 1 (edge A->B via page 1).
  // C: writes 2 — merges into A (intersecting writes) and picks up the
  // edge B->A from B's read of page 2 => cycle {A,B} => one node.
  graph.OnOperation(Op(1, {P(1)}, {P(2)}));
  graph.OnOperation(Op(2, {P(2)}, {P(1)}));
  EXPECT_EQ(graph.NumNodes(), 2u);  // no cycle yet
  graph.OnOperation(Op(3, {}, {P(2)}));
  EXPECT_EQ(graph.NumNodes(), 1u);
  EXPECT_EQ(graph.OwnerNode(P(1)), graph.OwnerNode(P(2)));
  EXPECT_EQ(graph.VarsSizeOf(P(1)), 2u);
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(1), &plan));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].vars.size(), 2u);  // atomic multi-page flush
}

TEST(GeneralGraphTest, ThreeNodeCycleCollapses) {
  GeneralWriteGraph graph;
  // Build A -> C, B -> A, C -> B through read-write conflicts, then
  // verify the strongly connected component collapses to one node.
  graph.OnOperation(Op(1, {P(1)}, {P(2)}));  // A reads 1 writes 2
  graph.OnOperation(Op(2, {P(2)}, {P(3)}));  // B reads 2 writes 3
  graph.OnOperation(Op(3, {P(3)}, {P(1)}));  // C reads 3 writes 1: A->C
  graph.OnOperation(Op(4, {}, {P(2)}));      // joins A; B->A edge forms
  graph.OnOperation(Op(5, {}, {P(3)}));      // joins B; C->B edge forms
  EXPECT_EQ(graph.NumNodes(), 1u);
  EXPECT_EQ(graph.VarsSizeOf(P(1)), 3u);
}

TEST(GeneralGraphTest, IdentityWriteShrinksVars) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {}, {P(1), P(2)}));
  EXPECT_EQ(graph.VarsSizeOf(P(1)), 2u);
  graph.OnIdentityWrite(P(1), 2);
  EXPECT_FALSE(graph.IsTracked(P(1)));
  EXPECT_EQ(graph.VarsSizeOf(P(2)), 1u);
  // The paper's Figure 2 phenomenon: the atomic flush set shrank.
}

TEST(GeneralGraphTest, InstallReleasesReaderBookkeeping) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {P(9)}, {P(1)}));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(1), &plan));
  graph.MarkInstalled(plan[0].node_id);
  // A later writer of 9 must get no edge from the installed reader.
  graph.OnOperation(Op(2, {}, {P(9)}));
  std::vector<InstallUnit> plan2;
  ASSERT_OK(graph.PlanInstall(P(9), &plan2));
  EXPECT_EQ(plan2.size(), 1u);
}

TEST(GeneralGraphTest, RedoStartTracksMinLsn) {
  GeneralWriteGraph graph;
  EXPECT_EQ(graph.RedoStartLsn(100), 100u);
  graph.OnOperation(Op(7, {}, {P(1)}));
  graph.OnOperation(Op(9, {}, {P(2)}));
  EXPECT_EQ(graph.RedoStartLsn(100), 7u);
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(1), &plan));
  graph.MarkInstalled(plan[0].node_id);
  EXPECT_EQ(graph.RedoStartLsn(100), 9u);
}

TEST(GeneralGraphTest, StatsReportStructure) {
  GeneralWriteGraph graph;
  graph.OnOperation(Op(1, {}, {P(1), P(2)}));
  graph.OnOperation(Op(2, {P(1)}, {P(3)}));
  graph.OnOperation(Op(3, {}, {P(1)}));  // merges into node of {1,2}
  WriteGraphStats stats = graph.GetStats();
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_GE(stats.max_vars, 2u);
  EXPECT_GE(stats.edges, 1u);
}

TEST(GeneralGraphTest, DiamondDependencyPlansEveryAncestorOnce) {
  GeneralWriteGraph graph;
  // A reads 10 writes 1; B reads 10 writes 2; C writes 10 (A->C, B->C).
  graph.OnOperation(Op(1, {P(10)}, {P(1)}));
  graph.OnOperation(Op(2, {P(10)}, {P(2)}));
  graph.OnOperation(Op(3, {}, {P(10)}));
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(10), &plan));
  ASSERT_EQ(plan.size(), 3u);
  uint64_t c = graph.OwnerNode(P(10));
  EXPECT_EQ(plan.back().node_id, c);
}

TEST(GeneralGraphTest, PlanUntrackedPageFails) {
  GeneralWriteGraph graph;
  std::vector<InstallUnit> plan;
  EXPECT_TRUE(graph.PlanInstall(P(1), &plan).IsNotFound());
}

TEST(GeneralGraphTest, ChainPlansInTopologicalOrder) {
  GeneralWriteGraph graph;
  // chain: n1 (writes 1) <- n2 (reads 1 writes 2)... i.e. edges
  // n_reader -> n_writer. Build: op reads k writes k+1; then op writes k.
  graph.OnOperation(Op(1, {P(1)}, {P(2)}));
  graph.OnOperation(Op(2, {P(2)}, {P(3)}));
  graph.OnOperation(Op(3, {}, {P(2)}));  // reader-of-2 -> this node
  graph.OnOperation(Op(4, {}, {P(1)}));  // reader-of-1 -> this node
  std::vector<InstallUnit> plan;
  ASSERT_OK(graph.PlanInstall(P(1), &plan));
  // node(writes 1) must come after node(reads 1, writes 2).
  size_t writer1 = IndexOf(plan, graph.OwnerNode(P(1)));
  size_t reader1 = IndexOf(plan, graph.OwnerNode(P(2)));
  EXPECT_LT(reader1, writer1);
}

}  // namespace
}  // namespace llb
