#include <gtest/gtest.h>

#include <memory>

#include "io/fault_env.h"
#include "io/mem_env.h"
#include "storage/page.h"
#include "storage/page_store.h"
#include "tests/test_util.h"

namespace llb {
namespace {

PageImage MakePage(const std::string& content, Lsn lsn) {
  PageImage page;
  page.SetPayload(Slice(content));
  page.set_lsn(lsn);
  page.set_type(PageType::kRaw);
  return page;
}

TEST(PageImageTest, FreshPageIsZeroAndValid) {
  PageImage page;
  EXPECT_TRUE(page.IsZero());
  EXPECT_EQ(page.lsn(), 0u);
  EXPECT_OK(page.VerifyChecksum());
}

TEST(PageImageTest, LsnAndTypeRoundTrip) {
  PageImage page;
  page.set_lsn(0xABCDEF0102030405ull);
  page.set_type(PageType::kBtree);
  EXPECT_EQ(page.lsn(), 0xABCDEF0102030405ull);
  EXPECT_EQ(page.type(), PageType::kBtree);
}

TEST(PageImageTest, SealThenVerify) {
  PageImage page = MakePage("payload bytes", 9);
  page.Seal();
  EXPECT_OK(page.VerifyChecksum());
}

TEST(PageImageTest, CorruptionDetected) {
  PageImage page = MakePage("payload bytes", 9);
  page.Seal();
  std::string raw = page.raw_string();
  raw[100] ^= 0x5A;
  PageImage tampered = PageImage::FromRaw(raw);
  EXPECT_FALSE(tampered.VerifyChecksum().ok());
}

TEST(PageImageTest, SetPayloadPadsAndTruncates) {
  PageImage page;
  page.SetPayload(Slice("abc"));
  EXPECT_EQ(page.payload()[0], 'a');
  EXPECT_EQ(page.payload()[3], '\0');
  std::string big(kPagePayloadSize + 100, 'x');
  page.SetPayload(Slice(big));
  EXPECT_EQ(page.payload()[kPagePayloadSize - 1], 'x');
}

class PageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = PageStore::Open(&env_, "store", /*num_partitions=*/2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    store_ = std::move(r).value();
  }

  MemEnv env_;
  std::unique_ptr<PageStore> store_;
};

TEST_F(PageStoreTest, NeverWrittenPageReadsZero) {
  PageImage page;
  ASSERT_OK(store_->ReadPage(PageId{0, 7}, &page));
  EXPECT_TRUE(page.IsZero());
}

TEST_F(PageStoreTest, WriteReadRoundTrip) {
  ASSERT_OK(store_->WritePage(PageId{0, 3}, MakePage("hello", 5)));
  PageImage page;
  ASSERT_OK(store_->ReadPage(PageId{0, 3}, &page));
  EXPECT_EQ(page.lsn(), 5u);
  EXPECT_EQ(page.payload().ToString().substr(0, 5), "hello");
}

TEST_F(PageStoreTest, PartitionsAreIndependent) {
  ASSERT_OK(store_->WritePage(PageId{0, 0}, MakePage("zero", 1)));
  ASSERT_OK(store_->WritePage(PageId{1, 0}, MakePage("one", 2)));
  PageImage a, b;
  ASSERT_OK(store_->ReadPage(PageId{0, 0}, &a));
  ASSERT_OK(store_->ReadPage(PageId{1, 0}, &b));
  EXPECT_NE(a.payload().ToString(), b.payload().ToString());
}

TEST_F(PageStoreTest, OutOfRangePartitionRejected) {
  PageImage page;
  EXPECT_FALSE(store_->ReadPage(PageId{9, 0}, &page).ok());
  EXPECT_FALSE(store_->WritePage(PageId{9, 0}, page).ok());
}

TEST_F(PageStoreTest, PageWriteIsDurableImmediately) {
  ASSERT_OK(store_->WritePage(PageId{0, 1}, MakePage("durable", 3)));
  env_.CrashAndRestart();
  PageImage page;
  ASSERT_OK(store_->ReadPage(PageId{0, 1}, &page));
  EXPECT_EQ(page.payload().ToString().substr(0, 7), "durable");
}

TEST_F(PageStoreTest, BatchWritesAllPages) {
  std::vector<PageStore::Entry> batch;
  for (uint32_t i = 0; i < 5; ++i) {
    batch.push_back({PageId{0, i}, MakePage("p" + std::to_string(i), i + 1)});
  }
  ASSERT_OK(store_->WriteBatchAtomic(batch));
  for (uint32_t i = 0; i < 5; ++i) {
    PageImage page;
    ASSERT_OK(store_->ReadPage(PageId{0, i}, &page));
    EXPECT_EQ(page.lsn(), i + 1);
  }
}

TEST_F(PageStoreTest, BatchSpanningPartitions) {
  std::vector<PageStore::Entry> batch{{PageId{0, 0}, MakePage("a", 1)},
                                      {PageId{1, 9}, MakePage("b", 2)}};
  ASSERT_OK(store_->WriteBatchAtomic(batch));
  PageImage page;
  ASSERT_OK(store_->ReadPage(PageId{1, 9}, &page));
  EXPECT_EQ(page.lsn(), 2u);
}

TEST_F(PageStoreTest, PageCountTracksHighestWrite) {
  ASSERT_OK(store_->WritePage(PageId{0, 9}, MakePage("x", 1)));
  ASSERT_OK_AND_ASSIGN(uint32_t count, store_->PageCount(0));
  EXPECT_EQ(count, 10u);
}

TEST_F(PageStoreTest, WipePartitionZeroesPages) {
  ASSERT_OK(store_->WritePage(PageId{0, 2}, MakePage("doomed", 1)));
  ASSERT_OK(store_->WipePartition(0));
  PageImage page;
  ASSERT_OK(store_->ReadPage(PageId{0, 2}, &page));
  EXPECT_TRUE(page.IsZero());
}

TEST_F(PageStoreTest, CorruptPageFailsChecksum) {
  ASSERT_OK(store_->WritePage(PageId{0, 4}, MakePage("fine", 1)));
  ASSERT_OK(store_->CorruptPage(PageId{0, 4}));
  PageImage page;
  EXPECT_TRUE(store_->ReadPage(PageId{0, 4}, &page).IsCorruption());
}

TEST_F(PageStoreTest, CopyAllFrom) {
  ASSERT_OK(store_->WritePage(PageId{0, 1}, MakePage("one", 1)));
  ASSERT_OK(store_->WritePage(PageId{1, 2}, MakePage("two", 2)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> dst,
                       PageStore::Open(&env_, "dst", 2));
  ASSERT_OK(dst->CopyAllFrom(*store_, /*pages_per_partition=*/4));
  EXPECT_EQ(testutil::DiffStores(*store_, *dst, 2, 4), "");
}

// Crash atomicity: sweep every crash point inside an atomic batch write
// and verify the batch is all-or-nothing after journal recovery.
TEST_F(PageStoreTest, BatchIsAtomicAcrossEveryCrashPoint) {
  // Baseline state.
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_OK(store_->WritePage(PageId{0, i}, MakePage("old", 1)));
  }

  // Count durable events in one full batch.
  uint64_t baseline = env_.durable_events();
  std::vector<PageStore::Entry> batch;
  for (uint32_t i = 0; i < 3; ++i) {
    batch.push_back({PageId{0, i}, MakePage("new", 2)});
  }
  ASSERT_OK(store_->WriteBatchAtomic(batch));
  uint64_t events_per_batch = env_.durable_events() - baseline;
  ASSERT_GT(events_per_batch, 2u);

  for (uint64_t k = 1; k <= events_per_batch; ++k) {
    MemEnv env;
    auto r = PageStore::Open(&env, "s", 1);
    ASSERT_TRUE(r.ok());
    std::unique_ptr<PageStore> store = std::move(r).value();
    for (uint32_t i = 0; i < 3; ++i) {
      ASSERT_OK(store->WritePage(PageId{0, i}, MakePage("old", 1)));
    }
    CrashAtEventInjector injector(k);
    env.SetFaultInjector(&injector);
    std::vector<PageStore::Entry> b;
    for (uint32_t i = 0; i < 3; ++i) {
      b.push_back({PageId{0, i}, MakePage("new", 2)});
    }
    Status s = store->WriteBatchAtomic(b);  // may fail: that's the crash
    (void)s;
    env.CrashAndRestart();

    // Reopen: journal recovery must leave all-old or all-new.
    auto r2 = PageStore::Open(&env, "s", 1);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    std::unique_ptr<PageStore> recovered = std::move(r2).value();
    int news = 0;
    for (uint32_t i = 0; i < 3; ++i) {
      PageImage page;
      ASSERT_OK(recovered->ReadPage(PageId{0, i}, &page));
      if (page.lsn() == 2) ++news;
    }
    EXPECT_TRUE(news == 0 || news == 3)
        << "crash point " << k << " left partial batch (" << news << "/3)";
  }
}

TEST_F(PageStoreTest, JournalReplayIsIdempotentOnReopen) {
  std::vector<PageStore::Entry> batch{{PageId{0, 0}, MakePage("a", 5)},
                                      {PageId{0, 1}, MakePage("b", 6)}};
  ASSERT_OK(store_->WriteBatchAtomic(batch));
  // Reopen over the same env twice.
  for (int i = 0; i < 2; ++i) {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> again,
                         PageStore::Open(&env_, "store", 2));
    PageImage page;
    ASSERT_OK(again->ReadPage(PageId{0, 1}, &page));
    EXPECT_EQ(page.lsn(), 6u);
  }
}

}  // namespace
}  // namespace llb
