#!/usr/bin/env python3
"""Regression gate over BENCH_backup.json files produced by
tools/benchrunner.

Two layers of checks:

  1. Invariants (always): the current file's derived batched-sweep
     speedup must meet --min-speedup (default 1.0x) — batching K >= 16
     pages must not lose to the legacy per-page sweep on *this*
     machine. The floor was 1.5x under software CRC32C; hardware CRC32C
     dispatch cut the per-page checksum cost that dominated the legacy
     sweep, so on MemEnv the batching win is now mostly latch
     amortisation, small (~1.1-1.2x) and noisy (both sides are
     memcpy-speed, so the ratio is also excluded from the baseline
     band, like ship_keepup_ratio). The gate still catches batching
     becoming a pessimisation. Its derived parallel-sweep speedup at 4
     workers must
     meet --min-parallel-speedup (default 2.0x) under the LatencyEnv HDD
     profile (bench_x7_parallel_sweep; EXPERIMENTS.md X7), and its
     derived restore speedup at 4 workers must meet
     --min-restore-speedup (default 2.0x) on the same profile
     (bench_x8_restore; EXPERIMENTS.md X8), and its derived log-shipping
     keep-up ratio (standby apply MB/s over primary ingest MB/s) must
     meet --min-ship-keepup (default 0.3x) — a loose floor that catches
     apply-path collapses (bench_x9_log_shipping); the ratio is too
     noisy on small shared runners for the 15% baseline band, so it is
     invariant-gated only. The derived instant-restore TTFT speedup
     (single-worker offline restore TTFT over restoring-mode open TTFT)
     must meet --min-ttft-speedup (default 10.0x) on the same profile
     (bench_x10_instant_restore; EXPERIMENTS.md X10). The derived async
     deep-queue speedups (qd8 over qd1 throughput on LatencyEnv(Nvme),
     bench_x11_async_io; EXPERIMENTS.md X11) must meet
     --min-async-speedup (default 2.0x) for both the sweep and the
     restore direction. The derived group-commit updater scaling
     (4-updater ops/s during an active backup with log_channels=4 over
     log_channels=1, on the simulated-SSD profile;
     bench_x4_backup_throughput BM_UpdatersDuringBackup;
     EXPERIMENTS.md X12) must meet --min-updater-scaling (default
     2.0x).

     With --profile posix the default invariants are replaced by the
     real-file checks: speedup_posix_qd8 and speedup_posix_restore_qd8
     (qd8 over qd1 on actual files through PosixEnv or the io_uring Env)
     must meet --min-posix-speedup (default 0.9x). The floor is
     deliberately loose: on a fast local filesystem the page cache
     absorbs most of the latency a deep queue would hide, so the win is
     small — the gate only catches the async path being *slower* than
     sync, i.e. a dispatch or batching bug, not a missed optimisation.

  2. Baseline comparison (with --baseline): derived metrics are
     throughput *ratios* measured on one machine, so they transfer across
     hardware; each current ratio must be within --threshold (default
     15%) below its committed baseline value. Absolute MB/s numbers do
     NOT transfer across machines and are only compared under
     --absolute (same-hardware runs).

Exit status 0 = pass, 1 = regression or malformed input.

Usage:
  tools/bench_check.py --current BENCH_backup.json \
      [--baseline BENCH_backup.json] [--threshold 0.15] \
      [--min-speedup 1.5] [--absolute]
"""

import argparse
import json
import sys
from pathlib import Path


def load(path):
    data = json.loads(Path(path).read_text())
    if data.get("schema") != "llb-bench-backup/1":
        raise ValueError("%s: unexpected schema %r" %
                         (path, data.get("schema")))
    return data


def ratio_metrics(derived):
    """Derived keys that are hardware-portable ratios.

    The batched-sweep family (speedup_batch*, batched_speedup_best) is
    deliberately NOT in the baseline band: since hardware CRC32C both
    sides of that ratio are memcpy-speed on MemEnv and its run-to-run
    noise on shared runners exceeds 15%. It stays gated by the
    --min-speedup invariant floor only, like ship_keepup_ratio.
    updater_scaling_t4 is likewise invariant-gated only
    (--min-updater-scaling): contended multi-threaded update loops on
    shared runners are too noisy for the baseline band.
    """
    return {
        k: v for k, v in derived.items()
        if isinstance(v, (int, float)) and
        not k.startswith("speedup_batch") and
        (k.startswith("speedup_") or k in ("latch_reduction_k16",
                                           "ttft_speedup"))
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression vs baseline")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required batched-vs-legacy sweep speedup "
                             "(hardware CRC32C shrank the per-page CPU "
                             "cost the batch amortises, so the MemEnv "
                             "ratio is structurally small and noisy; "
                             "this floor catches batching turning into "
                             "a pessimisation)")
    parser.add_argument("--min-parallel-speedup", type=float, default=2.0,
                        help="required 4-worker parallel sweep speedup "
                             "under the simulated-HDD profile")
    parser.add_argument("--min-restore-speedup", type=float, default=2.0,
                        help="required 4-worker media-recovery restore "
                             "speedup under the simulated-HDD profile")
    parser.add_argument("--min-ship-keepup", type=float, default=0.3,
                        help="required standby-apply / primary-ingest "
                             "throughput ratio (apply pays a per-frame "
                             "force + flush, so it runs below ingest; "
                             "this floor catches apply-path collapses "
                             "and is deliberately loose — the ratio is "
                             "noisy on small shared runners, so it is "
                             "excluded from the baseline band)")
    parser.add_argument("--min-ttft-speedup", type=float, default=10.0,
                        help="required time-to-first-transaction speedup "
                             "of instant restore over the single-worker "
                             "offline restore under the simulated-HDD "
                             "profile (bench_x10_instant_restore; "
                             "EXPERIMENTS.md X10)")
    parser.add_argument("--min-async-speedup", type=float, default=2.0,
                        help="required qd8-vs-qd1 async deep-queue "
                             "speedup (sweep and restore) under the "
                             "simulated-NVMe profile "
                             "(bench_x11_async_io; EXPERIMENTS.md X11)")
    parser.add_argument("--min-updater-scaling", type=float, default=2.0,
                        help="required 4-updater ops/s scaling of "
                             "epoch-based group commit (log_channels=4) "
                             "over the legacy inline-force WAL "
                             "(log_channels=1) while a backup is "
                             "continuously active, on the simulated-SSD "
                             "profile (bench_x4_backup_throughput "
                             "BM_UpdatersDuringBackup; EXPERIMENTS.md "
                             "X12)")
    parser.add_argument("--min-posix-speedup", type=float, default=0.9,
                        help="required qd8-vs-qd1 speedup over real "
                             "files (--profile posix); a loose floor — "
                             "the page cache hides most device latency "
                             "locally, so this catches the async path "
                             "being slower than sync, not a missed win")
    parser.add_argument("--profile", choices=("default", "posix"),
                        default="default",
                        help="which invariant set to apply: the "
                             "simulated-device suite (default) or the "
                             "real-file posix suite from "
                             "`benchrunner --posix`")
    parser.add_argument("--absolute", action="store_true",
                        help="also compare absolute bytes_per_second "
                             "(same-hardware baselines only)")
    args = parser.parse_args()

    current = load(args.current)
    failures = []

    if args.profile == "posix":
        for key, what in (("speedup_posix_qd8", "real-file sweep"),
                          ("speedup_posix_restore_qd8",
                           "real-file restore")):
            value = current.get("derived", {}).get(key)
            if value is None:
                failures.append("current file has no %s "
                                "(did bench_x11_async_io BM_Posix run?)"
                                % key)
            elif value < args.min_posix_speedup:
                failures.append(
                    "%s qd8 speedup %.3fx < required %.2fx "
                    "(async backend slower than sync over real files)" %
                    (what, value, args.min_posix_speedup))
            else:
                print("bench_check: %s qd8 speedup %.3fx (>= %.2fx)" %
                      (what, value, args.min_posix_speedup))
        if failures:
            for failure in failures:
                print("bench_check: FAIL: %s" % failure, file=sys.stderr)
            return 1
        print("bench_check: all checks passed")
        return 0

    speedup = current.get("derived", {}).get("batched_speedup_best")
    if speedup is None:
        failures.append("current file has no batched_speedup_best "
                        "(did bench_x6_batched_sweep run?)")
    elif speedup < args.min_speedup:
        failures.append(
            "batched sweep speedup %.3fx < required %.2fx" %
            (speedup, args.min_speedup))
    else:
        print("bench_check: batched sweep speedup %.3fx (>= %.2fx)" %
              (speedup, args.min_speedup))

    parallel = current.get("derived", {}).get("speedup_parallel_t4")
    if parallel is None:
        failures.append("current file has no speedup_parallel_t4 "
                        "(did bench_x7_parallel_sweep run?)")
    elif parallel < args.min_parallel_speedup:
        failures.append(
            "parallel sweep speedup %.3fx at 4 workers < required %.2fx" %
            (parallel, args.min_parallel_speedup))
    else:
        print("bench_check: parallel sweep speedup %.3fx at 4 workers "
              "(>= %.2fx)" % (parallel, args.min_parallel_speedup))

    restore = current.get("derived", {}).get("speedup_restore_t4")
    if restore is None:
        failures.append("current file has no speedup_restore_t4 "
                        "(did bench_x8_restore run?)")
    elif restore < args.min_restore_speedup:
        failures.append(
            "restore speedup %.3fx at 4 workers < required %.2fx" %
            (restore, args.min_restore_speedup))
    else:
        print("bench_check: restore speedup %.3fx at 4 workers "
              "(>= %.2fx)" % (restore, args.min_restore_speedup))

    keepup = current.get("derived", {}).get("ship_keepup_ratio")
    if keepup is None:
        failures.append("current file has no ship_keepup_ratio "
                        "(did bench_x9_log_shipping run?)")
    elif keepup < args.min_ship_keepup:
        failures.append(
            "log-shipping keep-up ratio %.3fx < required %.2fx "
            "(standby apply path regressed)" %
            (keepup, args.min_ship_keepup))
    else:
        print("bench_check: log-shipping keep-up ratio %.3fx (>= %.2fx)" %
              (keepup, args.min_ship_keepup))

    ttft = current.get("derived", {}).get("ttft_speedup")
    if ttft is None:
        failures.append("current file has no ttft_speedup "
                        "(did bench_x10_instant_restore run?)")
    elif ttft < args.min_ttft_speedup:
        failures.append(
            "instant-restore TTFT speedup %.3fx < required %.2fx" %
            (ttft, args.min_ttft_speedup))
    else:
        print("bench_check: instant-restore TTFT speedup %.3fx (>= %.2fx)" %
              (ttft, args.min_ttft_speedup))

    scaling = current.get("derived", {}).get("updater_scaling_t4")
    if scaling is None:
        failures.append("current file has no updater_scaling_t4 "
                        "(did bench_x4_backup_throughput "
                        "BM_UpdatersDuringBackup run?)")
    elif scaling < args.min_updater_scaling:
        failures.append(
            "group-commit updater scaling %.3fx at 4 updaters < "
            "required %.2fx" % (scaling, args.min_updater_scaling))
    else:
        print("bench_check: group-commit updater scaling %.3fx at "
              "4 updaters (>= %.2fx)" % (scaling,
                                         args.min_updater_scaling))

    for key, what in (("speedup_async_qd8", "async sweep"),
                      ("speedup_async_restore_qd8", "async restore")):
        value = current.get("derived", {}).get(key)
        if value is None:
            failures.append("current file has no %s "
                            "(did bench_x11_async_io run?)" % key)
        elif value < args.min_async_speedup:
            failures.append(
                "%s qd8 speedup %.3fx < required %.2fx" %
                (what, value, args.min_async_speedup))
        else:
            print("bench_check: %s qd8 speedup %.3fx (>= %.2fx)" %
                  (what, value, args.min_async_speedup))

    if args.baseline:
        baseline = load(args.baseline)
        base_ratios = ratio_metrics(baseline.get("derived", {}))
        cur_ratios = ratio_metrics(current.get("derived", {}))
        for key, base_value in sorted(base_ratios.items()):
            if base_value <= 0:
                continue
            cur_value = cur_ratios.get(key)
            if cur_value is None:
                failures.append("derived metric %s missing from current"
                                % key)
                continue
            floor = base_value * (1.0 - args.threshold)
            status = "ok" if cur_value >= floor else "REGRESSION"
            print("bench_check: %s current=%.3f baseline=%.3f floor=%.3f %s"
                  % (key, cur_value, base_value, floor, status))
            if cur_value < floor:
                failures.append(
                    "%s regressed: %.3f < %.3f (baseline %.3f - %d%%)" %
                    (key, cur_value, floor, base_value,
                     round(args.threshold * 100)))
        if args.absolute:
            base_by_name = {
                (b["binary"], b["name"]): b
                for b in baseline.get("benchmarks", [])
                if "bytes_per_second" in b
            }
            for rec in current.get("benchmarks", []):
                key = (rec["binary"], rec["name"])
                if key not in base_by_name or "bytes_per_second" not in rec:
                    continue
                base_bps = base_by_name[key]["bytes_per_second"]
                floor = base_bps * (1.0 - args.threshold)
                if rec["bytes_per_second"] < floor:
                    failures.append(
                        "%s/%s throughput regressed: %.1f MB/s < floor "
                        "%.1f MB/s" % (key[0], key[1],
                                       rec["bytes_per_second"] / 1e6,
                                       floor / 1e6))

    if failures:
        for failure in failures:
            print("bench_check: FAIL: %s" % failure, file=sys.stderr)
        return 1
    print("bench_check: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
