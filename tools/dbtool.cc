// llb_dbtool — inspection and recovery utility for llbackup databases.
//
// The engine normally runs over the in-memory simulated environment; this
// tool operates on a database serialized into a single image file with
// `save` / `load`, so engine state can be examined offline:
//
//   llb_dbtool demo                         build a demo db image
//   llb_dbtool log <image>                  dump the recovery log
//   llb_dbtool log-stats <image>            per-op-code record statistics
//   llb_dbtool pages <image> <partition>    page LSN/type map of S
//   llb_dbtool manifest <image> <backup>    print a backup manifest
//   llb_dbtool verify <image> <db>          stable state vs full-log oracle
//   llb_dbtool restore <image> <db> <bk>    media recovery, then verify
//   llb_dbtool restore <image> <db> <bk> --instant
//                                           instant restore: serve reads
//                                           while pages stream back in
//   llb_dbtool restore status <image> <db>  progress of an interrupted
//                                           instant restore (bitmap cell)
//   llb_dbtool verify-backup <image> <bk>   scrub (read-only): checksums +
//                                           manifest chain of a backup
//   llb_dbtool scrub <image> <bk> <db>      verify + repair bad backup pages
//                                           from S / the log, rewrite image
//   llb_dbtool ship <image> <db>            replicate the log into a warm
//                                           standby in the image
//   llb_dbtool standby status <image> <db>  replication-lag report
//   llb_dbtool torture [scenario] [seed]    crash-point sweep of a pipeline
//                                           scenario (no image; in-memory)
//   llb_dbtool env-caps                     IO capability probe: io_uring
//                                           availability, CRC32C backend
//
// The image format is a length-prefixed list of (name, contents) pairs of
// every file in the env (durable contents only by construction: images
// are saved from a fresh env or after recovery).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "backup/backup_scrubber.h"
#include "backup/backup_store.h"
#include "btree/btree.h"
#include "common/coding.h"
#include "common/crc32c.h"
#include "filestore/filestore.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/uring_env.h"
#include "recovery/media_recovery.h"
#include "ship/log_shipper.h"
#include "ship/standby_applier.h"
#include "sim/harness.h"
#include "sim/oracle.h"
#include "torture/concurrent_torture.h"
#include "torture/crash_sweeper.h"
#include "wal/log_manager.h"

namespace llb::dbtool {
namespace {

// ---------- image save/load (host filesystem <-> MemEnv) ----------

Status SaveImage(MemEnv* env, const std::string& path) {
  std::string blob;
  for (const std::string& name : env->ListFiles()) {
    auto file_or = env->OpenFile(name, false);
    LLB_RETURN_IF_ERROR(file_or.status());
    LLB_ASSIGN_OR_RETURN(uint64_t size, (*file_or)->Size());
    std::string contents;
    LLB_RETURN_IF_ERROR((*file_or)->ReadAt(0, size, &contents));
    PutLengthPrefixed(&blob, Slice(name));
    PutLengthPrefixed(&blob, Slice(contents));
  }
  FILE* out = fopen(path.c_str(), "wb");
  if (out == nullptr) return Status::IoError("cannot open " + path);
  size_t written = fwrite(blob.data(), 1, blob.size(), out);
  fclose(out);
  if (written != blob.size()) return Status::IoError("short write");
  return Status::OK();
}

Status LoadImage(const std::string& path, MemEnv* env) {
  FILE* in = fopen(path.c_str(), "rb");
  if (in == nullptr) return Status::IoError("cannot open " + path);
  std::string blob;
  char buffer[1 << 16];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), in)) > 0) {
    blob.append(buffer, n);
  }
  fclose(in);
  SliceReader reader{Slice(blob)};
  while (reader.remaining() > 0) {
    Slice name, contents;
    if (!reader.ReadLengthPrefixed(&name) ||
        !reader.ReadLengthPrefixed(&contents)) {
      return Status::Corruption("malformed image");
    }
    auto file_or = env->OpenFile(name.ToString(), true);
    LLB_RETURN_IF_ERROR(file_or.status());
    LLB_RETURN_IF_ERROR((*file_or)->WriteAt(0, contents));
    LLB_RETURN_IF_ERROR((*file_or)->Sync());
  }
  return Status::OK();
}

// ---------- subcommands ----------

const char* OpName(uint16_t code) {
  switch (code) {
    case kOpPhysicalWrite: return "W_P";
    case kOpIdentityWrite: return "W_IP";
    case kOpCheckpoint: return "CKPT";
    case kOpBtreeInsert: return "BtreeInsert";
    case kOpBtreeDelete: return "BtreeDelete";
    case kOpBtreeMovRec: return "MovRec";
    case kOpBtreeRmvRec: return "RmvRec";
    case kOpBtreeInsertIndex: return "InsertIndex";
    case kOpBtreeSetMeta: return "SetMeta";
    case kOpFileCopy: return "FileCopy";
    case kOpFileSort: return "FileSort";
    case kOpFileWrite: return "FileWrite";
    case kOpFileTransform: return "FileTransform";
    case kOpAppExec: return "Ex";
    case kOpAppRead: return "R";
    case kOpAppWrite: return "W_L";
    default: return "?";
  }
}

std::string SetToString(const std::vector<PageId>& set) {
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ",";
    if (i >= 4) {
      out += "...+" + std::to_string(set.size() - i);
      break;
    }
    out += set[i].ToString();
  }
  return out + "}";
}

int CmdLog(MemEnv* env, const std::string& log_name) {
  auto log_or = LogManager::Open(env, log_name);
  if (!log_or.ok()) {
    fprintf(stderr, "%s\n", log_or.status().ToString().c_str());
    return 1;
  }
  Status s = (*log_or)->Scan(1, [](const LogRecord& rec) {
    printf("%8llu  %-12s reads=%-22s writes=%-22s payload=%zuB\n",
           static_cast<unsigned long long>(rec.lsn), OpName(rec.op_code),
           SetToString(rec.readset).c_str(),
           SetToString(rec.writeset).c_str(), rec.payload.size());
    return Status::OK();
  });
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdLogStats(MemEnv* env, const std::string& log_name) {
  auto log_or = LogManager::Open(env, log_name);
  if (!log_or.ok()) {
    fprintf(stderr, "%s\n", log_or.status().ToString().c_str());
    return 1;
  }
  struct Row {
    uint64_t count = 0;
    uint64_t bytes = 0;
  };
  std::vector<std::pair<uint16_t, Row>> rows;
  uint64_t total = 0, total_bytes = 0;
  Status s = (*log_or)->Scan(1, [&](const LogRecord& rec) {
    Row* row = nullptr;
    for (auto& [code, r] : rows) {
      if (code == rec.op_code) row = &r;
    }
    if (row == nullptr) {
      rows.emplace_back(rec.op_code, Row{});
      row = &rows.back().second;
    }
    row->count += 1;
    row->bytes += rec.EncodedSize();
    ++total;
    total_bytes += rec.EncodedSize();
    return Status::OK();
  });
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("%-14s %10s %12s %8s\n", "op", "records", "bytes", "avg");
  for (const auto& [code, row] : rows) {
    printf("%-14s %10llu %12llu %8llu\n", OpName(code),
           static_cast<unsigned long long>(row.count),
           static_cast<unsigned long long>(row.bytes),
           static_cast<unsigned long long>(row.count ? row.bytes / row.count
                                                     : 0));
  }
  printf("%-14s %10llu %12llu\n", "TOTAL",
         static_cast<unsigned long long>(total),
         static_cast<unsigned long long>(total_bytes));
  return 0;
}

int CmdPages(MemEnv* env, const std::string& store_name,
             PartitionId partition) {
  auto store_or = PageStore::Open(env, store_name, partition + 1);
  if (!store_or.ok()) {
    fprintf(stderr, "%s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto count_or = (*store_or)->PageCount(partition);
  if (!count_or.ok()) {
    fprintf(stderr, "%s\n", count_or.status().ToString().c_str());
    return 1;
  }
  printf("%8s %12s %8s\n", "page", "lsn", "type");
  for (uint32_t page = 0; page < *count_or; ++page) {
    PageImage image;
    Status s = (*store_or)->ReadPage(PageId{partition, page}, &image);
    if (!s.ok()) {
      printf("%8u  <%s>\n", page, s.ToString().c_str());
      continue;
    }
    if (image.IsZero()) continue;
    printf("%8u %12llu %8u\n", page,
           static_cast<unsigned long long>(image.lsn()),
           static_cast<unsigned>(image.type()));
  }
  return 0;
}

int CmdManifest(MemEnv* env, const std::string& backup_name) {
  auto manifest_or = BackupManifest::Load(env, backup_name);
  if (!manifest_or.ok()) {
    fprintf(stderr, "%s\n", manifest_or.status().ToString().c_str());
    return 1;
  }
  const BackupManifest& m = *manifest_or;
  printf("name:                %s\n", m.name.c_str());
  printf("complete:            %s\n", m.complete ? "yes" : "NO");
  printf("start_lsn:           %llu (media roll-forward scan start)\n",
         static_cast<unsigned long long>(m.start_lsn));
  printf("end_lsn:             %llu\n",
         static_cast<unsigned long long>(m.end_lsn));
  printf("partitions:          %u x %u pages\n", m.partitions,
         m.pages_per_partition);
  printf("steps:               %u\n", m.steps);
  printf("incremental:         %s%s%s\n", m.incremental ? "yes (base: " : "no",
         m.incremental ? m.base_name.c_str() : "", m.incremental ? ")" : "");
  if (m.incremental) printf("pages in delta:      %zu\n", m.pages.size());
  return 0;
}

int CmdVerify(MemEnv* env, const std::string& db_name, uint32_t partitions,
              uint32_t pages) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  auto log_or = LogManager::Open(env, Database::LogName(db_name));
  if (!log_or.ok()) {
    fprintf(stderr, "%s\n", log_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<PageStore> oracle;
  Status s = testutil::BuildOracle(env, **log_or, registry, "dbtool_oracle",
                                   partitions, &oracle);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto stable_or =
      PageStore::Open(env, Database::StableName(db_name), partitions);
  if (!stable_or.ok()) {
    fprintf(stderr, "%s\n", stable_or.status().ToString().c_str());
    return 1;
  }
  std::string diff =
      testutil::DiffStores(**stable_or, *oracle, partitions, pages);
  if (diff.empty()) {
    printf("OK: stable database matches full-log re-execution\n");
    return 0;
  }
  printf("MISMATCH at page %s\n", diff.c_str());
  return 2;
}

void PrintScrubReport(const ScrubReport& r) {
  printf("manifests checked:   %u\n", r.manifests_checked);
  printf("pages scanned:       %llu\n",
         static_cast<unsigned long long>(r.pages_scanned));
  printf("bad pages:           %llu\n",
         static_cast<unsigned long long>(r.bad_pages));
  printf("repaired from S:     %llu\n",
         static_cast<unsigned long long>(r.repaired_from_stable));
  printf("repaired from log:   %llu\n",
         static_cast<unsigned long long>(r.repaired_from_log));
  printf("unrepaired:          %llu\n",
         static_cast<unsigned long long>(r.unrepaired));
}

int CmdVerifyBackup(MemEnv* env, const std::string& backup_name) {
  BackupScrubber scrubber(env, ScrubOptions{});
  auto report_or = scrubber.Scrub(backup_name);
  if (!report_or.ok()) {
    fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  PrintScrubReport(*report_or);
  if (report_or->clean()) {
    printf("OK: backup '%s' verifies clean\n", backup_name.c_str());
    return 0;
  }
  printf("BAD: %llu damaged page(s) — run 'scrub' to repair\n",
         static_cast<unsigned long long>(report_or->bad_pages));
  return 2;
}

int CmdScrub(MemEnv* env, const std::string& backup_name,
             const std::string& db_name, const std::string& out_path) {
  // The manifest supplies the store geometry, so no extra arguments.
  auto manifest_or = BackupManifest::Load(env, backup_name);
  if (!manifest_or.ok()) {
    fprintf(stderr, "%s\n", manifest_or.status().ToString().c_str());
    return 1;
  }
  // Opening a log or store creates it when absent, and repairing against
  // a freshly-created (all-zero) stable db would "repair" damaged backup
  // pages to zeros — so insist the named db is actually in the image.
  if (!env->FileExists(Database::LogName(db_name))) {
    fprintf(stderr, "no db named '%s' in the image (missing %s)\n",
            db_name.c_str(), Database::LogName(db_name).c_str());
    return 1;
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  auto log_or = LogManager::Open(env, Database::LogName(db_name));
  if (!log_or.ok()) {
    fprintf(stderr, "%s\n", log_or.status().ToString().c_str());
    return 1;
  }
  auto stable_or = PageStore::Open(env, Database::StableName(db_name),
                                   manifest_or->partitions);
  if (!stable_or.ok()) {
    fprintf(stderr, "%s\n", stable_or.status().ToString().c_str());
    return 1;
  }
  ScrubOptions options;
  options.repair = true;
  options.stable = stable_or->get();
  options.log = log_or->get();
  options.registry = &registry;
  // No cache is attached to a saved image (durable contents only), so no
  // install_current hook is needed; the scrub is offline and quiesced.
  BackupScrubber scrubber(env, options);
  auto report_or = scrubber.Scrub(backup_name);
  if (!report_or.ok()) {
    fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  PrintScrubReport(*report_or);
  Status s = SaveImage(env, out_path);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("rewrote image to %s\n", out_path.c_str());
  return report_or->fully_repaired() ? 0 : 2;
}

int CmdDemo(const std::string& path) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 256;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  auto engine_or = TestEngine::Create(options, "demo");
  if (!engine_or.ok()) return 1;
  auto engine = std::move(engine_or).value();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  if (!tree.Create().ok()) return 1;
  BackupJobOptions job;
  job.steps = 4;
  int64_t key = 0;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 40; ++i, ++key) {
      LLB_RETURN_IF_ERROR(tree.Insert(key, Slice("demo")));
    }
    return engine->db()->FlushAll();
  };
  for (; key < 200; ++key) {
    if (!tree.Insert(key, Slice("demo")).ok()) return 1;
  }
  if (!engine->db()->FlushAll().ok()) return 1;
  if (!engine->db()->TakeBackupWithOptions("demo_bk", job).status().ok()) {
    return 1;
  }
  if (!engine->db()->FlushAll().ok()) return 1;
  Status s = SaveImage(engine->env(), path);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("wrote demo image with db 'demo' and backup 'demo_bk' to %s\n",
         path.c_str());
  return 0;
}

// ---------- log shipping ----------

DbOptions ImageDbOptions(uint32_t partitions, uint32_t pages) {
  DbOptions options;
  options.partitions = partitions;
  options.pages_per_partition = pages;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  return options;
}

// Replicates the primary's whole retained log into a warm standby living
// in the same image: attach a shipper over a spool-file channel, pump
// every sealed segment, and drain it into a standby database. The
// standby (its stable store, its log, the durable ship cursor, and any
// untrimmed spool files) is saved back into the image, ready for
// `standby status` or further shipping rounds.
int CmdShip(MemEnv* env, const std::string& image_path,
            const std::string& db_name, const std::string& standby_name,
            uint32_t partitions, uint32_t pages) {
  if (!env->FileExists(Database::LogName(db_name))) {
    fprintf(stderr, "no db named '%s' in the image (missing %s)\n",
            db_name.c_str(), Database::LogName(db_name).c_str());
    return 1;
  }
  DbOptions options = ImageDbOptions(partitions, pages);
  auto run = [&]() -> Status {
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                         Database::Open(env, db_name, options));
    RegisterAllOps(db->registry());
    LLB_RETURN_IF_ERROR(db->Recover());

    FileShipChannel channel(env, db_name + ".ship");
    LogShipper shipper(env, db_name, db->log(), &channel);
    LLB_RETURN_IF_ERROR(shipper.Attach());
    LLB_RETURN_IF_ERROR(shipper.Pump());

    DbOptions standby_options = options;
    standby_options.standby = true;
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<Database> standby,
                         Database::Open(env, standby_name, standby_options));
    RegisterAllOps(standby->registry());
    LLB_RETURN_IF_ERROR(standby->Recover());
    StandbyApplier applier(standby.get(), &channel);
    LLB_RETURN_IF_ERROR(applier.CatchUpFromLocalLog());
    LLB_RETURN_IF_ERROR(applier.Drain());

    ShipStats stats = shipper.stats();
    printf("shipped %llu frame(s), %llu byte(s); cursor at lsn %llu\n",
           static_cast<unsigned long long>(stats.frames_sent),
           static_cast<unsigned long long>(stats.bytes_sent),
           static_cast<unsigned long long>(stats.last_shipped_lsn));
    StandbyStatus status = applier.GatherStatus(db->log()->durable_lsn());
    printf("%s\n", status.ToString().c_str());
    if (status.lsns_behind != 0) {
      return Status::Internal("standby did not converge: " +
                              status.ToString());
    }
    shipper.Detach();
    return Status::OK();
  };
  Status s = run();
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  s = SaveImage(env, image_path);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("rewrote image to %s\n", image_path.c_str());
  return 0;
}

// Read-only replication-lag report from the standby's point of view: how
// far its applied LSN trails the primary's durable tail.
int CmdStandbyStatus(MemEnv* env, const std::string& db_name,
                     const std::string& standby_name, uint32_t partitions,
                     uint32_t pages) {
  if (!env->FileExists(Database::LogName(standby_name))) {
    fprintf(stderr,
            "no standby named '%s' in the image (missing %s); "
            "run 'ship' first\n",
            standby_name.c_str(), Database::LogName(standby_name).c_str());
    return 1;
  }
  Lsn primary_durable = kInvalidLsn;
  if (env->FileExists(Database::LogName(db_name))) {
    auto log_or = LogManager::Open(env, Database::LogName(db_name));
    if (!log_or.ok()) {
      fprintf(stderr, "%s\n", log_or.status().ToString().c_str());
      return 1;
    }
    primary_durable = (*log_or)->durable_lsn();
  }
  DbOptions standby_options = ImageDbOptions(partitions, pages);
  standby_options.standby = true;
  auto run = [&]() -> Status {
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<Database> standby,
                         Database::Open(env, standby_name, standby_options));
    RegisterAllOps(standby->registry());
    LLB_RETURN_IF_ERROR(standby->Recover());
    FileShipChannel channel(env, db_name + ".ship");
    StandbyApplier applier(standby.get(), &channel);
    LLB_RETURN_IF_ERROR(applier.CatchUpFromLocalLog());
    printf("%s\n", applier.GatherStatus(primary_durable).ToString().c_str());
    return Status::OK();
  };
  Status s = run();
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

// ---------- instant restore ----------

// Progress report of an interrupted instant restore, decoded read-only
// from the durable restored-bitmap cell ("<db>.rbm").
int CmdRestoreStatus(MemEnv* env, const std::string& db_name) {
  std::string backup;
  auto status_or = InstantRestorer::InspectBitmap(
      env, Database::RestoreBitmapName(db_name), &backup);
  if (!status_or.ok()) {
    if (status_or.status().IsNotFound()) {
      printf("no instant restore in progress for db '%s'\n", db_name.c_str());
      return 0;
    }
    fprintf(stderr, "%s\n", status_or.status().ToString().c_str());
    return 1;
  }
  printf("instant restore of db '%s' from chain '%s': %llu/%llu pages "
         "(%.1f%%)%s\n",
         db_name.c_str(), backup.c_str(),
         static_cast<unsigned long long>(status_or->pages_restored),
         static_cast<unsigned long long>(status_or->pages_total),
         status_or->fraction * 100.0,
         status_or->complete ? ", complete — reopen to finalize" : "");
  printf("recovery tail: lsn %llu (reopen with 'restore --instant' or\n"
         "Database::OpenRestoring to resume)\n",
         static_cast<unsigned long long>(status_or->recovery_tail));
  return 0;
}

// Instant media recovery: the database opens immediately over S (wiped,
// damaged, or half-restored — the restore overwrites every page not yet
// marked restored), serves a read through the on-demand fault path, and
// drives the background sweep to completion, printing progress per step.
int CmdInstantRestore(MemEnv* env, const std::string& db_name,
                      const std::string& backup_name, uint32_t batch_pages) {
  auto manifest_or = BackupManifest::Load(env, backup_name);
  if (!manifest_or.ok()) {
    fprintf(stderr, "%s\n", manifest_or.status().ToString().c_str());
    return 1;
  }
  DbOptions options =
      ImageDbOptions(manifest_or->partitions, manifest_or->pages_per_partition);
  if (batch_pages > 0) options.restore_batch_pages = batch_pages;
  auto run = [&]() -> Status {
    LLB_ASSIGN_OR_RETURN(
        std::unique_ptr<Database> db,
        Database::OpenRestoring(env, db_name, options, backup_name));
    RegisterAllOps(db->registry());
    LLB_RETURN_IF_ERROR(db->Recover());
    if (db->restoring()) {
      // One read through the cache takes the prioritized fault path
      // transactions would take; the loop below is the background sweep.
      PageImage image;
      LLB_RETURN_IF_ERROR(db->ReadPage(PageId{0, 0}, &image));
    }
    while (db->restoring()) {
      RestoreStatus st = db->restore_status();
      printf("  %llu/%llu pages (%.1f%%), %llu on demand "
             "(%llu closure), %llu swept, eta %llu us\n",
             static_cast<unsigned long long>(st.pages_restored),
             static_cast<unsigned long long>(st.pages_total),
             st.fraction * 100.0,
             static_cast<unsigned long long>(st.pages_faulted),
             static_cast<unsigned long long>(st.closure_pages),
             static_cast<unsigned long long>(st.sweep_pages),
             static_cast<unsigned long long>(st.eta_us));
      LLB_ASSIGN_OR_RETURN(uint64_t moved, db->RestoreStep());
      (void)moved;
    }
    LLB_RETURN_IF_ERROR(db->FinishRestore());
    printf("instant restore of '%s' from '%s' complete\n", db_name.c_str(),
           backup_name.c_str());
    return Status::OK();
  };
  Status s = run();
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return CmdVerify(env, db_name, manifest_or->partitions,
                   manifest_or->pages_per_partition);
}

// End-to-end smoke over the real file-backed environment: open a
// database under `root`, load it, take a parallel batched backup, verify
// the chain, then close and recover from the on-disk files. This is the
// CI check that the engine runs unmodified on PosixEnv — everything else
// in this tool stays on MemEnv images.
int CmdPosixSmoke(const std::string& root) {
  auto env_or = PosixEnv::Open(root);
  if (!env_or.ok()) {
    fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<PosixEnv> env = std::move(env_or).value();

  DbOptions options;
  options.partitions = 2;
  options.pages_per_partition = 64;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_sweep_threads = 2;
  options.backup_batch_pages = 8;
  options.backup_pipelined = true;

  auto run = [&]() -> Status {
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                         Database::Open(env.get(), "posixdb", options));
    RegisterAllOps(db->registry());
    LLB_RETURN_IF_ERROR(db->Recover());
    std::vector<std::unique_ptr<FileStore>> files;
    for (uint32_t p = 0; p < options.partitions; ++p) {
      files.push_back(std::make_unique<FileStore>(
          db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
          /*num_files=*/options.pages_per_partition));
      for (uint32_t f = 0; f < options.pages_per_partition; ++f) {
        LLB_RETURN_IF_ERROR(files[p]->WriteValues(
            f, {static_cast<int64_t>(p) * 1000 + f, 1}));
      }
    }
    LLB_RETURN_IF_ERROR(db->FlushAll());
    LLB_RETURN_IF_ERROR(db->Checkpoint());

    BackupJobOptions job;
    job.sweep_threads = options.backup_sweep_threads;
    job.batch_pages = options.backup_batch_pages;
    job.pipelined = options.backup_pipelined;
    BackupJobStats stats;
    LLB_ASSIGN_OR_RETURN(BackupManifest manifest,
                         db->TakeBackupWithOptions("posix_bk", job, &stats));
    if (!manifest.complete) return Status::Internal("backup incomplete");
    if (stats.threads_spawned != 0) {
      return Status::Internal("pooled sweep spawned transient threads");
    }
    LLB_ASSIGN_OR_RETURN(ScrubReport verify, db->VerifyBackup("posix_bk"));
    if (!verify.clean()) return Status::Internal("backup not clean");

    // Async deep-queue leg over the same real files: a second backup
    // with 4 run IOs in flight per worker (io_uring when the kernel
    // grants it, the portable thread pool otherwise) — the scrub proves
    // the result byte-identical to the synchronous sweep's contract.
    BackupJobOptions async_job = job;
    async_job.queue_depth = 4;
    BackupJobStats async_stats;
    LLB_ASSIGN_OR_RETURN(
        BackupManifest async_manifest,
        db->TakeBackupWithOptions("posix_bk_async", async_job, &async_stats));
    if (!async_manifest.complete) {
      return Status::Internal("async backup incomplete");
    }
    LLB_ASSIGN_OR_RETURN(ScrubReport async_verify,
                         db->VerifyBackup("posix_bk_async"));
    if (!async_verify.clean()) return Status::Internal("async backup not clean");
    db.reset();

    // Reopen from the on-disk files and re-read the last value written.
    LLB_ASSIGN_OR_RETURN(db, Database::Open(env.get(), "posixdb", options));
    RegisterAllOps(db->registry());
    LLB_RETURN_IF_ERROR(db->Recover());
    {
      FileStore reopened(db.get(), 1, 0, 1, options.pages_per_partition);
      LLB_ASSIGN_OR_RETURN(std::vector<int64_t> values,
                           reopened.ReadValues(3));
      if (values.size() != 2 || values[0] != 1003) {
        return Status::Corruption("reopened file 3 of partition 1 mismatch");
      }
    }

    // MEDIA FAILURE end-to-end on real files: wipe S, restore it from
    // the backup through the shared transfer pipeline (batched +
    // pipelined + 2 restore workers), recover over it and re-verify.
    db.reset();
    {
      LLB_ASSIGN_OR_RETURN(
          std::unique_ptr<PageStore> stable,
          PageStore::Open(env.get(), Database::StableName("posixdb"),
                          options.partitions));
      for (PartitionId p = 0; p < options.partitions; ++p) {
        LLB_RETURN_IF_ERROR(stable->WipePartition(p));
      }
    }
    MediaRecoveryReport restored;
    {
      OpRegistry registry;
      RegisterAllOps(&registry);
      RestoreOptions restore;
      restore.batch_pages = options.backup_batch_pages;
      restore.pipelined = options.backup_pipelined;
      restore.queue_depth = 4;  // deep-queue restore over real files
      restore.threads = 2;
      LLB_ASSIGN_OR_RETURN(
          restored,
          RestoreFromBackupWithOptions(env.get(),
                                       Database::StableName("posixdb"),
                                       Database::LogName("posixdb"),
                                       "posix_bk", registry, restore));
    }
    LLB_ASSIGN_OR_RETURN(db, Database::Open(env.get(), "posixdb", options));
    RegisterAllOps(db->registry());
    LLB_RETURN_IF_ERROR(db->Recover());
    FileStore rebuilt(db.get(), 1, 0, 1, options.pages_per_partition);
    LLB_ASSIGN_OR_RETURN(std::vector<int64_t> values, rebuilt.ReadValues(3));
    if (values.size() != 2 || values[0] != 1003) {
      return Status::Corruption("restored file 3 of partition 1 mismatch");
    }
    printf("posix smoke OK: root=%s pages_copied=%llu pages_restored=%llu "
           "files=%zu async_backend=%s\n",
           root.c_str(), static_cast<unsigned long long>(stats.pages_copied),
           static_cast<unsigned long long>(restored.pages_restored),
           env->ListFiles().size(),
           UringAvailable() ? "io_uring" : "thread-pool");
    return Status::OK();
  };
  Status s = run();
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

// ---------- env-caps ----------

// IO capability probe, machine-parseable (key=value per line). CI keys
// off `io_uring=` to decide whether the uring-backed suites run on this
// kernel or are visibly SKIPPED.
int CmdEnvCaps() {
  printf("io_uring=%s\n", UringAvailable() ? "available" : "unavailable");
  printf("crc32c=%s\n", crc32c::Backend());
  printf("io_alignment=%zu\n", kIoAlignment);
  return 0;
}

// ---------- torture ----------

int Usage();

int RunOneSweep(ScenarioKind kind, uint64_t seed, uint64_t max_points,
                uint64_t nested_points, uint32_t log_channels = 1) {
  ScenarioOptions scenario;
  scenario.kind = kind;
  scenario.seed = seed;
  // >1 sweeps the epoch group-commit path: crash points land between
  // "channel sealed" and "epoch published" (the commit's sync event).
  scenario.log_channels = log_channels;
  // Backup and restore sweep the general-operation path; resume and scrub
  // sweep the tree path, matching the coverage split in torture_test.cc.
  scenario.graph =
      (kind == ScenarioKind::kResume || kind == ScenarioKind::kScrub ||
       kind == ScenarioKind::kLogShipping)
          ? WriteGraphKind::kTree
          : WriteGraphKind::kGeneral;
  if (kind == ScenarioKind::kBatchedBackup) {
    // Two batches per step so the scripted mid-sweep abort lands between
    // batch writes of one step (see the scenario's countdown math), with
    // the deep-queue async backend underneath (crash points sweep over
    // the in-flight window's durability events).
    scenario.batch_pages = std::max<uint32_t>(
        1, scenario.pages_per_partition / (scenario.backup_steps * 2));
    scenario.pipelined = true;
    scenario.queue_depth = 4;
  }
  if (kind == ScenarioKind::kParallelBackup) {
    // Two partitions sharded across two sweep workers; the workload (and
    // the determinism of the event count) lives on partition 0 only.
    scenario.partitions = 2;
    scenario.sweep_threads = 2;
  }
  if (kind == ScenarioKind::kParallelRestore) {
    // Batched + pipelined restore sharded across two workers over the
    // async deep queue; crash points land mid-parallel-restore and
    // salvage must re-restore.
    scenario.partitions = 2;
    scenario.sweep_threads = 2;
    scenario.batch_pages = std::max<uint32_t>(
        1, scenario.pages_per_partition / (scenario.backup_steps * 2));
    scenario.pipelined = true;
    scenario.queue_depth = 4;
  }

  SweepOptions sweep;
  sweep.max_points = max_points;
  sweep.nested_primary_points = nested_points;
  sweep.nested_max_points = nested_points == 0 ? 0 : 8;
  uint64_t lines = 0;
  sweep.progress = [&](const std::string& message) {
    if (lines++ % 16 == 0) {
      printf("  [%s] %s\n", ScenarioKindName(kind), message.c_str());
    }
  };

  printf("sweeping %s scenario (seed=%llu%s)...\n", ScenarioKindName(kind),
         static_cast<unsigned long long>(seed),
         log_channels > 1
             ? (", log_channels=" + std::to_string(log_channels)).c_str()
             : "");
  CrashSweeper sweeper(scenario);
  auto report_or = sweeper.Sweep(sweep);
  if (!report_or.ok()) {
    fprintf(stderr, "%s sweep FAILED: %s\n", ScenarioKindName(kind),
            report_or.status().ToString().c_str());
    return 1;
  }
  printf("%s sweep OK: %s\n", ScenarioKindName(kind),
         report_or->ToString().c_str());
  return 0;
}

int RunConcurrent(uint64_t seed) {
  ConcurrentTortureOptions options;
  options.seed = seed;
  printf("running concurrent torture (seed=%llu)...\n",
         static_cast<unsigned long long>(seed));
  auto report_or = RunConcurrentTorture(options);
  if (!report_or.ok()) {
    fprintf(stderr, "concurrent torture FAILED: %s\n",
            report_or.status().ToString().c_str());
    return 1;
  }
  printf("concurrent torture OK: %s\n", report_or->ToString().c_str());
  return 0;
}

int CmdTorture(const std::string& scenario, uint64_t seed,
               uint64_t max_points, uint64_t nested_points) {
  struct Entry {
    const char* name;
    ScenarioKind kind;
    uint32_t log_channels;
  };
  static const Entry kSweeps[] = {
      {"backup", ScenarioKind::kBackup, 1},
      {"resume", ScenarioKind::kResume, 1},
      {"scrub", ScenarioKind::kScrub, 1},
      {"restore", ScenarioKind::kRestore, 1},
      {"batched", ScenarioKind::kBatchedBackup, 1},
      {"parallel", ScenarioKind::kParallelBackup, 1},
      {"restore-parallel", ScenarioKind::kParallelRestore, 1},
      {"log-shipping", ScenarioKind::kLogShipping, 1},
      {"instant-restore", ScenarioKind::kInstantRestore, 1},
      // Epoch group-commit variants: same scripts over 4 log channels,
      // so crashes enumerate the sealed-but-unpublished window too.
      {"backup-grouped", ScenarioKind::kBackup, 4},
      {"log-shipping-grouped", ScenarioKind::kLogShipping, 4},
  };
  bool matched = false;
  int rc = 0;
  for (const Entry& entry : kSweeps) {
    if (scenario == "all" || scenario == entry.name) {
      matched = true;
      rc |= RunOneSweep(entry.kind, seed, max_points, nested_points,
                        entry.log_channels);
    }
  }
  if (scenario == "all" || scenario == "concurrent") {
    matched = true;
    rc |= RunConcurrent(seed);
  }
  if (!matched) {
    fprintf(stderr, "unknown torture scenario '%s'\n", scenario.c_str());
    return Usage();
  }
  return rc;
}

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  llb_dbtool demo [image=demo.img]\n"
          "  llb_dbtool log <image> [log=demo.log]\n"
          "  llb_dbtool log-stats <image> [log=demo.log]\n"
          "  llb_dbtool pages <image> [store=demo.stable] [partition=0]\n"
          "  llb_dbtool manifest <image> [backup=demo_bk]\n"
          "  llb_dbtool verify <image> [db=demo] [partitions=1] [pages=256]\n"
          "  llb_dbtool restore <image> [db=demo] [backup=demo_bk]\n"
          "      [batch=32] [threads=1] [pipelined=0] [--to-lsn N]\n"
          "      [--instant] [--queue-depth N]\n"
          "      off-line media recovery: wipe-tolerant restore of the\n"
          "      chain with multi-page batched IO, optional prefetch\n"
          "      pipelining, and partition-sharded restore workers;\n"
          "      --queue-depth N > 1 keeps N runs in flight through the\n"
          "      async Env backend (io_uring or thread-pool fallback);\n"
          "      --to-lsn N restores to a point in time instead (picks\n"
          "      the newest chain ending at or before N, rolls forward\n"
          "      to exactly N, discards the log suffix; N must not cut\n"
          "      a multi-record atomic group);\n"
          "      --instant opens the database restoring-mode instead:\n"
          "      it serves transactions immediately, restoring faulted\n"
          "      pages' influence closures on demand while a background\n"
          "      sweep (progress printed per step) fills in the rest;\n"
          "      crash-resumable via the durable restored-bitmap\n"
          "  llb_dbtool restore status <image> [db=demo]\n"
          "      progress of an interrupted instant restore, decoded\n"
          "      read-only from the restored-bitmap cell (<db>.rbm)\n"
          "  llb_dbtool ship <image> [db=demo] [standby=<db>_sb]\n"
          "      [partitions=1] [pages=256]\n"
          "      replicate the primary's retained log into a warm\n"
          "      standby inside the image (spool-file channel, durable\n"
          "      ship cursor), verify convergence, rewrite the image\n"
          "  llb_dbtool standby status <image> [db=demo] [standby=<db>_sb]\n"
          "      [partitions=1] [pages=256]\n"
          "      read-only replication-lag report: the standby's applied\n"
          "      LSN vs the primary's durable tail, buffered frames, role\n"
          "  llb_dbtool verify-backup <image> [backup=demo_bk]\n"
          "      re-read every page of the backup chain, verify checksums\n"
          "      and the manifest chain; read-only, exit 2 on damage\n"
          "  llb_dbtool scrub <image> [backup=demo_bk] [db=demo] "
          "[out=<image>]\n"
          "      verify-backup plus repair: bad pages re-copied from the\n"
          "      stable db (identity-logged) or rebuilt from the log, then\n"
          "      the image is rewritten; exit 2 if any page stays bad\n"
          "  llb_dbtool posix-smoke [root=./posix_smoke]\n"
          "      end-to-end smoke over the file-backed PosixEnv: open a\n"
          "      database under <root>, load it, take a parallel batched\n"
          "      backup (2 pool workers), verify the chain, reopen from\n"
          "      the on-disk files, then wipe S and restore it from the\n"
          "      backup (batched + pipelined, 2 restore workers)\n"
          "  llb_dbtool env-caps\n"
          "      probe this host's IO capabilities and print them as\n"
          "      key=value lines (io_uring=available|unavailable,\n"
          "      crc32c=<backend>, io_alignment=<bytes>); CI greps the\n"
          "      output to decide whether the uring suites run or are\n"
          "      visibly skipped\n"
          "  llb_dbtool torture [scenario=all] [seed=1] [max-points=0]\n"
          "      [nested-points=0]\n"
          "      crash-point sweep of a pipeline scenario (backup, resume,\n"
          "      scrub, restore, batched, parallel, restore-parallel,\n"
          "      log-shipping, instant-restore, concurrent,\n"
          "      backup-grouped, log-shipping-grouped, or all); the\n"
          "      -grouped variants run with log_channels=4 so crash\n"
          "      points land between channel seal and epoch publish:\n"
          "      run once to count durability events, then crash at each\n"
          "      one, recover, and verify db + completed backups against\n"
          "      the oracle; max-points caps the sweep (0 = every event)\n"
          "      and nested-points > 0 also crashes the recovery itself\n");
  return 64;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "demo") {
    return CmdDemo(argc > 2 ? argv[2] : "demo.img");
  }
  if (cmd == "posix-smoke") {
    return CmdPosixSmoke(argc > 2 ? argv[2] : "./posix_smoke");
  }
  if (cmd == "env-caps") {
    return CmdEnvCaps();
  }
  if (cmd == "torture") {
    return CmdTorture(argc > 2 ? argv[2] : "all",
                      argc > 3 ? strtoull(argv[3], nullptr, 10) : 1,
                      argc > 4 ? strtoull(argv[4], nullptr, 10) : 0,
                      argc > 5 ? strtoull(argv[5], nullptr, 10) : 0);
  }
  if (cmd == "restore" && argc > 2 && std::string(argv[2]) == "status") {
    if (argc < 4) return Usage();
    MemEnv env;
    Status s = LoadImage(argv[3], &env);
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    return CmdRestoreStatus(&env, argc > 4 ? argv[4] : "demo");
  }
  if (cmd == "standby") {
    if (argc < 4 || std::string(argv[2]) != "status") return Usage();
    MemEnv env;
    Status s = LoadImage(argv[3], &env);
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::string db = argc > 4 ? argv[4] : "demo";
    return CmdStandbyStatus(&env, db,
                            argc > 5 ? argv[5] : db + "_sb",
                            argc > 6 ? atoi(argv[6]) : 1,
                            argc > 7 ? atoi(argv[7]) : 256);
  }
  if (argc < 3) return Usage();
  MemEnv env;
  Status s = LoadImage(argv[2], &env);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (cmd == "log") {
    return CmdLog(&env, argc > 3 ? argv[3] : "demo.log");
  }
  if (cmd == "log-stats") {
    return CmdLogStats(&env, argc > 3 ? argv[3] : "demo.log");
  }
  if (cmd == "pages") {
    return CmdPages(&env, argc > 3 ? argv[3] : "demo.stable",
                    argc > 4 ? static_cast<PartitionId>(atoi(argv[4])) : 0);
  }
  if (cmd == "manifest") {
    return CmdManifest(&env, argc > 3 ? argv[3] : "demo_bk");
  }
  if (cmd == "verify") {
    return CmdVerify(&env, argc > 3 ? argv[3] : "demo",
                     argc > 4 ? atoi(argv[4]) : 1,
                     argc > 5 ? atoi(argv[5]) : 256);
  }
  if (cmd == "verify-backup") {
    return CmdVerifyBackup(&env, argc > 3 ? argv[3] : "demo_bk");
  }
  if (cmd == "scrub") {
    return CmdScrub(&env, argc > 3 ? argv[3] : "demo_bk",
                    argc > 4 ? argv[4] : "demo",
                    argc > 5 ? argv[5] : argv[2]);
  }
  if (cmd == "restore") {
    // `--to-lsn N` switches from plain media recovery to point-in-time
    // restore; `--instant` opens the database restoring-mode instead of
    // copying offline; `--queue-depth N` routes the transfer through
    // the async deep-queue backend with N runs in flight. The remaining
    // arguments stay positional.
    std::vector<std::string> positional;
    Lsn to_lsn = kInvalidLsn;
    bool pitr = false;
    bool instant = false;
    uint32_t queue_depth = 0;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--to-lsn" && i + 1 < argc) {
        to_lsn = strtoull(argv[++i], nullptr, 10);
        pitr = true;
        continue;
      }
      if (std::string(argv[i]) == "--instant") {
        instant = true;
        continue;
      }
      if (std::string(argv[i]) == "--queue-depth" && i + 1 < argc) {
        queue_depth = static_cast<uint32_t>(atoi(argv[++i]));
        continue;
      }
      positional.emplace_back(argv[i]);
    }
    if (instant && pitr) {
      fprintf(stderr, "--instant cannot be combined with --to-lsn (an "
                      "instant restore always rolls forward to the end of "
                      "the log)\n");
      return 64;
    }
    if (instant) {
      return CmdInstantRestore(
          &env, !positional.empty() ? positional[0] : "demo",
          positional.size() > 1 ? positional[1] : "demo_bk",
          positional.size() > 2 ? atoi(positional[2].c_str()) : 0);
    }
    std::string db = !positional.empty() ? positional[0] : "demo";
    std::string backup = positional.size() > 1 ? positional[1] : "demo_bk";
    RestoreOptions options;
    if (positional.size() > 2) {
      options.batch_pages = atoi(positional[2].c_str());
    }
    if (positional.size() > 3) options.threads = atoi(positional[3].c_str());
    if (positional.size() > 4) {
      options.pipelined = atoi(positional[4].c_str()) != 0;
    }
    if (queue_depth > 1) {
      options.pipelined = true;  // the deep queue rides the pipelined path
      options.queue_depth = queue_depth;
    }
    OpRegistry registry;
    RegisterAllOps(&registry);
    auto report_or =
        pitr ? Database::RestoreToLsn(&env, db, to_lsn, registry, options)
             : RestoreFromBackupWithOptions(&env, Database::StableName(db),
                                            Database::LogName(db), backup,
                                            registry, options);
    if (!report_or.ok()) {
      fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
      return 1;
    }
    if (pitr) {
      printf("point-in-time restore to lsn %llu: ",
             static_cast<unsigned long long>(to_lsn));
    }
    printf("restored %llu pages from %u backup(s); %llu ops rolled "
           "forward\n",
           static_cast<unsigned long long>(report_or->pages_restored),
           report_or->backups_applied,
           static_cast<unsigned long long>(report_or->redo.ops_replayed));
    return CmdVerify(&env, db, 1, 256);
  }
  if (cmd == "ship") {
    std::string db = argc > 3 ? argv[3] : "demo";
    return CmdShip(&env, argv[2], db, argc > 4 ? argv[4] : db + "_sb",
                   argc > 5 ? atoi(argv[5]) : 1,
                   argc > 6 ? atoi(argv[6]) : 256);
  }
  return Usage();
}

}  // namespace
}  // namespace llb::dbtool

int main(int argc, char** argv) { return llb::dbtool::Main(argc, argv); }
