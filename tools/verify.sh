#!/usr/bin/env bash
# Runs the full verification ladder: default build + tests (including the
# `torture` crash sweeps), then the ASan/UBSan tier, then the TSan tier
# (which is what the concurrent torture and fence-protocol race tests are
# really for). Usage:
#
#   tools/verify.sh            # all three tiers
#   tools/verify.sh default    # just one tier (default | asan | tsan)
set -euo pipefail

cd "$(dirname "$0")/.."

tiers=("$@")
if [ ${#tiers[@]} -eq 0 ]; then
  tiers=(default asan tsan)
fi

for tier in "${tiers[@]}"; do
  echo "==== tier: ${tier} ===="
  cmake --preset "${tier}"
  cmake --build --preset "${tier}" -j
  ctest --preset "${tier}" -j "$(nproc)"
  # The crash sweeps are the robustness gate; run them by label so a
  # filtered/cached ctest state can never silently skip them.
  ctest --preset "${tier}" -L torture
done

echo "==== all tiers green ===="
